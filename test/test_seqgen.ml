(* Sequential test generation (Seqgen): the held-vector stimulus is
   deterministic in its seed, replays byte-identically through the flat
   run_seq and the legacy reference engine at any domain count, and the
   reported stats are exactly a replay of that stimulus — on the fixed
   Systems 1-2 cores and on random cores. *)

open Socet_util
open Socet_netlist
open Socet_cores
module Fsim = Socet_atpg.Fsim
module Fault = Socet_atpg.Fault
module Seqgen = Socet_atpg.Seqgen

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

let with_domains n f =
  Pool.set_size n;
  Fun.protect ~finally:(fun () -> Pool.set_size 1) f

let system_netlists () =
  List.concat_map
    (fun soc ->
      List.map (fun ci -> ci.Socet_core.Soc.ci_netlist) soc.Socet_core.Soc.insts)
    [ Systems.system1 (); Systems.system2 () ]

(* ------------------------------------------------------------------ *)
(* Fixed systems                                                       *)
(* ------------------------------------------------------------------ *)

let test_sequence_shape () =
  List.iter
    (fun nl ->
      let npi = List.length (Netlist.pis nl) in
      let inputs = Seqgen.sequence ~cycles:48 ~hold:8 nl in
      check_int "one vector per cycle" 48 (List.length inputs);
      let arr = Array.of_list inputs in
      Array.iteri
        (fun i v ->
          check_int "vector width is the PI count" npi (Bitvec.length v);
          (* Held stimulus: within a hold window every cycle repeats the
             vector drawn at the window start. *)
          if i mod 8 <> 0 then
            check "held within window" true (Bitvec.equal v arr.(i - 1)))
        arr)
    (system_netlists ())

let test_stats_are_replay () =
  List.iter
    (fun nl ->
      let stats = Seqgen.random ~cycles:64 ~hold:8 ~seed:7 nl in
      let faults = Fault.collapse nl in
      check_int "total is the collapsed fault count" (List.length faults)
        stats.Seqgen.total_faults;
      let inputs = Seqgen.sequence ~cycles:64 ~hold:8 ~seed:7 nl in
      let detected = List.length (Fsim.run_seq nl ~inputs ~faults) in
      check_int "detected = replaying the same sequence" detected
        stats.Seqgen.detected;
      check "coverage consistent" true
        (stats.Seqgen.total_faults = 0
        || Float.abs
             (stats.Seqgen.coverage
             -. 100.0
                *. float_of_int detected
                /. float_of_int stats.Seqgen.total_faults)
           < 1e-9);
      check "efficiency equals coverage" true
        (stats.Seqgen.efficiency = stats.Seqgen.coverage))
    (system_netlists ())

(* ------------------------------------------------------------------ *)
(* Random cores                                                        *)
(* ------------------------------------------------------------------ *)

let prop_sequence_deterministic =
  QCheck.Test.make ~name:"sequence deterministic in seed" ~count:10
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let nl =
        Socet_synth.Elaborate.core_to_netlist (Gen.random_core (Rng.create seed))
      in
      let a = Seqgen.sequence ~cycles:32 ~hold:4 ~seed nl in
      let b = Seqgen.sequence ~cycles:32 ~hold:4 ~seed nl in
      List.for_all2 Bitvec.equal a b)

let prop_replay_clean =
  QCheck.Test.make
    ~name:"sequence replays identically: flat 1/2/4 domains = legacy"
    ~count:6
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let nl =
        Socet_synth.Elaborate.core_to_netlist (Gen.random_core (Rng.create seed))
      in
      let faults = Fault.collapse nl in
      let inputs = Seqgen.sequence ~cycles:40 ~hold:8 ~seed nl in
      let fault_sig fs =
        List.map (fun (f : Fault.t) -> (f.f_net, f.f_stuck)) fs
      in
      let expect = fault_sig (Fsim.run_seq_ref nl ~inputs ~faults) in
      List.for_all
        (fun d ->
          with_domains d (fun () ->
              fault_sig (Fsim.run_seq nl ~inputs ~faults) = expect))
        [ 1; 2; 4 ])

let () =
  Alcotest.run "socet_seqgen"
    [
      ( "systems",
        [
          Alcotest.test_case "stimulus shape" `Quick test_sequence_shape;
          Alcotest.test_case "stats are a replay" `Quick test_stats_are_replay;
        ] );
      ( "random",
        [
          QCheck_alcotest.to_alcotest prop_sequence_deterministic;
          QCheck_alcotest.to_alcotest prop_replay_clean;
        ] );
    ]
