(* Thin re-export: the shared random-core/random-SOC generator moved to
   lib/cores/gen.ml (Socet_cores.Gen) so the TAM fleet driver, the bench
   harness and `socet gen` share it with these suites.  Dune links every
   unnamed module in this directory into each test executable, so the
   suites keep saying [Gen.random_core]/[Gen.random_soc]; the default
   parameters reproduce the historical RNG stream exactly. *)

let w = Socet_cores.Gen.w
let random_core rng = Socet_cores.Gen.random_core rng
let random_soc rng = Socet_cores.Gen.random_soc rng
