(* The domain pool's deterministic-reduction contract, end to end: the
   pool primitives themselves, then the two parallel engines (fault
   simulation, design-space search) checked bit-identical across domain
   counts — and, for the design space, against the unmemoized
   per-choice evaluator. *)

open Socet_util
open Socet_core
open Socet_cores
module Fsim = Socet_atpg.Fsim
module Fault = Socet_atpg.Fault
module Podem = Socet_atpg.Podem
module Obs = Socet_obs.Obs

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Pool primitives                                                     *)
(* ------------------------------------------------------------------ *)

let with_domains n f =
  Pool.set_size n;
  Fun.protect ~finally:(fun () -> Pool.set_size 1) f

let test_map_order () =
  with_domains 4 @@ fun () ->
  List.iter
    (fun n ->
      let input = Array.init n (fun i -> i) in
      let out = Pool.parallel_map ~chunk:3 (fun i -> (i * 7) mod 13) input in
      check_int (Printf.sprintf "map n=%d" n) n (Array.length out);
      Array.iteri
        (fun i v -> check_int (Printf.sprintf "slot %d" i) ((i * 7) mod 13) v)
        out)
    [ 0; 1; 2; 7; 64; 65; 1000 ]

let test_map_list () =
  with_domains 2 @@ fun () ->
  let xs = List.init 101 (fun i -> i) in
  check "list order" true
    (Pool.parallel_map_list ~chunk:5 (fun i -> i + 1) xs
    = List.map (fun i -> i + 1) xs)

let test_reduce_order () =
  with_domains 4 @@ fun () ->
  (* String concatenation is not commutative: any out-of-order merge
     would scramble the result. *)
  let input = Array.init 200 string_of_int in
  let got =
    Pool.parallel_reduce ~chunk:7
      ~map:(fun s -> s ^ ",")
      ~merge:(fun acc s -> acc ^ s)
      ~init:"" input
  in
  let want = Array.fold_left (fun acc s -> acc ^ s ^ ",") "" input in
  check "reduce submission order" true (got = want)

let test_exception_propagates () =
  with_domains 4 @@ fun () ->
  let raised =
    try
      ignore
        (Pool.parallel_map ~chunk:2
           (fun i -> if i = 37 then failwith "boom" else i)
           (Array.init 100 (fun i -> i)));
      false
    with Failure m -> m = "boom"
  in
  check "exception surfaced" true raised;
  (* The pool survives a failed job. *)
  let out = Pool.parallel_map (fun i -> i * 2) (Array.init 50 (fun i -> i)) in
  check "pool reusable after failure" true (out = Array.init 50 (fun i -> i * 2))

let test_chunk_heuristic () =
  with_domains 4 @@ fun () ->
  (* No cost hint: pure load-balance split, ~4 chunks per domain. *)
  check_int "balance split" (1000 / (4 * Pool.size ())) (Pool.chunk_size 1000);
  check_int "floor of one" 1 (Pool.chunk_size 2);
  (* An explicit chunk always wins over the heuristic. *)
  check_int "explicit chunk wins" 7 (Pool.chunk_size ~chunk:7 1000);
  (* A cost hint coarsens tiny work items toward the ~2048-unit grain ... *)
  check "cheap items coarsen" true
    (Pool.chunk_size ~cost:10.0 1000 >= 2048 / 10);
  (* ... and leaves expensive items on the balance split. *)
  check_int "expensive items balance" (1000 / (4 * Pool.size ()))
    (Pool.chunk_size ~cost:4096.0 1000)

let test_iter_ranges_covers () =
  with_domains 4 @@ fun () ->
  List.iter
    (fun n ->
      let seen = Array.make (max n 1) 0 in
      Pool.parallel_iter_ranges ~chunk:3 n (fun lo hi ->
          for i = lo to hi - 1 do
            seen.(i) <- seen.(i) + 1
          done);
      check "each index exactly once" true (Array.for_all (( = ) 1) seen || n = 0))
    [ 0; 1; 2; 3; 64; 1000 ]

let test_nested_no_deadlock () =
  with_domains 4 @@ fun () ->
  let out =
    Pool.parallel_map ~chunk:1
      (fun i ->
        Array.fold_left ( + ) 0
          (Pool.parallel_map (fun j -> i + j) (Array.init 20 (fun j -> j))))
      (Array.init 16 (fun i -> i))
  in
  Array.iteri
    (fun i v -> check_int (Printf.sprintf "nested %d" i) ((20 * i) + 190) v)
    out

(* ------------------------------------------------------------------ *)
(* Fault simulation: identical detections at any domain count          *)
(* ------------------------------------------------------------------ *)

let fsim_signature nl ~vectors ~faults =
  List.map
    (fun (f : Fault.t) -> (f.Fault.f_net, f.Fault.f_stuck))
    (Fsim.run_comb nl ~vectors ~faults)

let prop_fsim_domain_invariant =
  QCheck.Test.make ~name:"parallel: run_comb identical at 1/2/4 domains"
    ~count:10
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let core = Gen.random_core rng in
      let nl = Socet_synth.Elaborate.core_to_netlist core in
      let stats = Podem.run ~random_patterns:32 nl in
      let vectors = stats.Podem.vectors in
      let faults = Fault.collapse nl in
      let at n = with_domains n (fun () -> fsim_signature nl ~vectors ~faults) in
      let base = at 1 in
      at 2 = base && at 4 = base)

let test_cone_cache_counts () =
  Obs.configure ();
  Obs.reset ();
  let rng = Rng.create 7 in
  let core = Gen.random_core rng in
  let nl = Socet_synth.Elaborate.core_to_netlist core in
  let stats = Podem.run ~random_patterns:32 nl in
  let faults = Fault.collapse nl in
  let sites =
    List.sort_uniq compare (List.map (fun (f : Fault.t) -> f.Fault.f_net) faults)
  in
  Obs.reset ();
  ignore (Fsim.run_comb nl ~vectors:stats.Podem.vectors ~faults);
  ignore (Fsim.run_comb nl ~vectors:stats.Podem.vectors ~faults);
  let counter name =
    Option.value ~default:0 (List.assoc_opt name (Obs.snapshot_counters ()))
  in
  let hits = counter "atpg.fsim.cone_cache_hits" in
  let misses = counter "atpg.fsim.cone_cache_misses" in
  Obs.disable ();
  (* Podem.run above already built every site's cone on this netlist, so
     both run_comb calls resolve purely from the cache; misses only count
     real constructions (one per distinct site, all during Podem.run). *)
  check "misses bounded by distinct sites" true
    (misses >= 0 && misses <= List.length sites);
  check_int "both calls resolve from cache" (2 * List.length faults) hits

(* ------------------------------------------------------------------ *)
(* Design space: identical at any domain count, and memo-exact         *)
(* ------------------------------------------------------------------ *)

let route_sig (r : Access.route) =
  (r.Access.r_target, r.Access.r_arrival, r.Access.r_departures,
   r.Access.r_added_smux)

let test_sig (t : Schedule.core_test) =
  ( t.Schedule.ct_inst,
    t.Schedule.ct_vectors,
    t.Schedule.ct_period,
    t.Schedule.ct_tail,
    t.Schedule.ct_time,
    List.map route_sig t.Schedule.ct_justify,
    List.map route_sig t.Schedule.ct_observe )

let point_sig (p : Select.point) =
  let s = p.Select.pt_schedule in
  ( p.Select.pt_choice,
    p.Select.pt_area,
    p.Select.pt_time,
    ( s.Schedule.s_total_time,
      s.Schedule.s_transparency_cost,
      s.Schedule.s_smux_cost,
      s.Schedule.s_controller_cost ),
    List.map test_sig s.Schedule.s_tests,
    List.sort compare
      (Hashtbl.fold (fun k v acc -> (k, v) :: acc) s.Schedule.s_usage []) )

let test_design_space_domain_invariant () =
  List.iter
    (fun soc ->
      let at n = with_domains n (fun () -> List.map point_sig (Select.design_space soc)) in
      let base = at 1 in
      check "2 domains = sequential" true (at 2 = base);
      check "4 domains = sequential" true (at 4 = base))
    [ Systems.system1 (); Systems.system2 () ]

let test_design_space_matches_evaluate () =
  (* The memoized fan-out must agree, point by point, with the plain
     one-full-build-per-choice evaluator. *)
  let soc = Systems.system1 () in
  let space = with_domains 4 (fun () -> Select.design_space soc) in
  check "non-empty space" true (space <> []);
  List.iter
    (fun (p : Select.point) ->
      let plain = Select.evaluate soc ~choice:p.Select.pt_choice () in
      check "memoized = unmemoized" true (point_sig p = point_sig plain))
    space

let test_memo_hits_counted () =
  Obs.configure ();
  Obs.reset ();
  let soc = Systems.system1 () in
  let n_points =
    with_domains 2 (fun () -> List.length (Select.design_space soc))
  in
  let hits =
    Option.value ~default:0
      (List.assoc_opt "core.select.memo_hits" (Obs.snapshot_counters ()))
  in
  Obs.disable ();
  check "space explored" true (n_points > 1);
  check "memo reused across points" true (hits > 0)

let () =
  Alcotest.run "socet_parallel"
    [
      ( "pool",
        [
          Alcotest.test_case "map preserves order" `Quick test_map_order;
          Alcotest.test_case "map over lists" `Quick test_map_list;
          Alcotest.test_case "reduce merges in submission order" `Quick
            test_reduce_order;
          Alcotest.test_case "exceptions propagate, pool survives" `Quick
            test_exception_propagates;
          Alcotest.test_case "nested calls degrade, no deadlock" `Quick
            test_nested_no_deadlock;
          Alcotest.test_case "chunk-size heuristic" `Quick test_chunk_heuristic;
          Alcotest.test_case "iter_ranges covers exactly" `Quick
            test_iter_ranges_covers;
        ] );
      ( "fsim",
        [
          QCheck_alcotest.to_alcotest prop_fsim_domain_invariant;
          Alcotest.test_case "cone cache: misses build, hits reuse" `Quick
            test_cone_cache_counts;
        ] );
      ( "design-space",
        [
          Alcotest.test_case "identical across domain counts" `Slow
            test_design_space_domain_invariant;
          Alcotest.test_case "memoized equals unmemoized" `Slow
            test_design_space_matches_evaluate;
          Alcotest.test_case "memo hits counted" `Quick test_memo_hits_counted;
        ] );
    ]
