open Socet_util
open Socet_netlist

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ------------------------------------------------------------------ *)
(* Cell                                                               *)
(* ------------------------------------------------------------------ *)

let test_cell_arity_area () =
  check_int "mux2 arity" 3 (Cell.arity Cell.Mux2);
  check_int "sdffe arity" 4 (Cell.arity Cell.Sdffe);
  check_int "pi has no area" 0 (Cell.area Cell.Pi);
  check "scan upgrade costs something" true (Cell.scan_upgrade_area Cell.Dff > 0);
  check "dff is dff" true (Cell.is_dff Cell.Dffe);
  check "mux is not dff" false (Cell.is_dff Cell.Mux2);
  check "sdff is scan" true (Cell.is_scan Cell.Sdff);
  check "scan_of dff" true (Cell.scan_of Cell.Dff = Cell.Sdff);
  Alcotest.check_raises "scan_of non-ff" (Invalid_argument "Cell.scan_of: not a flip-flop")
    (fun () -> ignore (Cell.scan_of Cell.And2))

(* ------------------------------------------------------------------ *)
(* Netlist construction                                               *)
(* ------------------------------------------------------------------ *)

let test_netlist_build () =
  let nl = Netlist.create "t" in
  let a = Netlist.add_pi nl "a" in
  let b = Netlist.add_pi nl "b" in
  let g = Netlist.add_gate nl Cell.And2 [| a; b |] in
  Netlist.add_po nl "y" g;
  check_int "three gates" 3 (Netlist.gate_count nl);
  check_int "two PIs" 2 (List.length (Netlist.pis nl));
  check_int "one PO" 1 (List.length (Netlist.pos nl));
  check "fanout of a contains the and" true (List.mem g (Netlist.fanout nl a));
  check_int "pi index of b" 1 (Netlist.pi_index nl b);
  check "find_pi" true (Netlist.find_pi nl "a" = a);
  check "find_po" true (Netlist.find_po nl "y" = g)

let test_netlist_arity_check () =
  let nl = Netlist.create "t" in
  let a = Netlist.add_pi nl "a" in
  check "arity mismatch rejected" true
    (try
       ignore (Netlist.add_gate nl Cell.And2 [| a |]);
       false
     with Error.Socet_error e -> e.Error.err_engine = "netlist")

let test_netlist_area () =
  let nl = Netlist.create "t" in
  let a = Netlist.add_pi nl "a" in
  let inv = Netlist.add_gate nl Cell.Inv [| a |] in
  let ff = Netlist.add_gate nl Cell.Dff [| inv |] in
  ignore ff;
  check_int "area = inv + dff" (Cell.area Cell.Inv + Cell.area Cell.Dff)
    (Netlist.area nl)

let test_comb_order_cycle_detection () =
  let nl = Netlist.create "t" in
  let a = Netlist.add_pi nl "a" in
  (* Create a combinational loop via set_kind. *)
  let g1 = Netlist.add_gate nl Cell.Buf [| a |] in
  let g2 = Netlist.add_gate nl Cell.Buf [| g1 |] in
  Netlist.set_kind nl g1 Cell.Buf [| g2 |];
  check "cycle detected" true
    (try
       ignore (Netlist.comb_order nl);
       false
     with Error.Socet_error e -> e.Error.err_kind = Error.Validation)

let test_comb_order_ff_breaks_cycle () =
  let nl = Netlist.create "t" in
  let zero = Netlist.add_gate nl Cell.Const0 [||] in
  let ff = Netlist.add_gate nl Cell.Dff [| zero |] in
  let inv = Netlist.add_gate nl Cell.Inv [| ff |] in
  Netlist.set_kind nl ff Cell.Dff [| inv |];
  (* ff <- inv <- ff is fine: the flip-flop breaks the loop. *)
  check_int "order covers all gates" 3 (Array.length (Netlist.comb_order nl))

(* ------------------------------------------------------------------ *)
(* Simulation                                                          *)
(* ------------------------------------------------------------------ *)

(* Exhaustively verify every 2-input cell function. *)
let test_sim_gate_functions () =
  let truth kind f =
    let nl = Netlist.create "t" in
    let a = Netlist.add_pi nl "a" and b = Netlist.add_pi nl "b" in
    let g = Netlist.add_gate nl kind [| a; b |] in
    Netlist.add_po nl "y" g;
    for ia = 0 to 1 do
      for ib = 0 to 1 do
        let pi = Bitvec.create 2 in
        Bitvec.set pi 0 (ia = 1);
        Bitvec.set pi 1 (ib = 1);
        let po, _ = Sim.eval nl ~pi ~state:(Sim.initial_state nl) in
        Alcotest.(check bool)
          (Printf.sprintf "%s(%d,%d)" (Cell.name kind) ia ib)
          (f (ia = 1) (ib = 1))
          (Bitvec.get po 0)
      done
    done
  in
  truth Cell.And2 ( && );
  truth Cell.Or2 ( || );
  truth Cell.Nand2 (fun a b -> not (a && b));
  truth Cell.Nor2 (fun a b -> not (a || b));
  truth Cell.Xor2 ( <> );
  truth Cell.Xnor2 ( = )

let test_sim_mux () =
  let nl = Netlist.create "t" in
  let s = Netlist.add_pi nl "s" in
  let a = Netlist.add_pi nl "a" in
  let b = Netlist.add_pi nl "b" in
  let g = Netlist.add_gate nl Cell.Mux2 [| s; a; b |] in
  Netlist.add_po nl "y" g;
  let run s' a' b' =
    let pi = Bitvec.create 3 in
    Bitvec.set pi 0 s';
    Bitvec.set pi 1 a';
    Bitvec.set pi 2 b';
    let po, _ = Sim.eval nl ~pi ~state:(Sim.initial_state nl) in
    Bitvec.get po 0
  in
  check "sel=0 passes a" true (run false true false);
  check "sel=1 passes b" false (run true true false);
  check "sel=1 passes b (true)" true (run true false true)

let test_sim_dff_delay () =
  let nl = Netlist.create "t" in
  let d = Netlist.add_pi nl "d" in
  let ff = Netlist.add_gate nl Cell.Dff [| d |] in
  Netlist.add_po nl "q" ff;
  let pi = Bitvec.of_string "1" in
  let st0 = Sim.initial_state nl in
  let po0, st1 = Sim.eval nl ~pi ~state:st0 in
  check "q is 0 before the edge" false (Bitvec.get po0 0);
  let po1, _ = Sim.eval nl ~pi ~state:st1 in
  check "q is 1 after one cycle" true (Bitvec.get po1 0)

let test_sim_dffe_hold () =
  let nl = Netlist.create "t" in
  let d = Netlist.add_pi nl "d" in
  let en = Netlist.add_pi nl "en" in
  let ff = Netlist.add_gate nl Cell.Dffe [| d; en |] in
  Netlist.add_po nl "q" ff;
  let step pi st =
    let _, st' = Sim.eval nl ~pi ~state:st in
    st'
  in
  (* Load 1 with enable, then present 0 with enable off: must hold. *)
  let st = Sim.initial_state nl in
  let st = step (Bitvec.of_string "11") st in
  check "loaded" true (Bitvec.get st 0);
  let st = step (Bitvec.of_string "00") st in
  check "held with enable low" true (Bitvec.get st 0);
  let st = step (Bitvec.of_string "10") st in
  check "loads 0 when enabled" false (Bitvec.get st 0)

let test_sim_sdff_scan_path () =
  let nl = Netlist.create "t" in
  let d = Netlist.add_pi nl "d" in
  let si = Netlist.add_pi nl "si" in
  let se = Netlist.add_pi nl "se" in
  let ff = Netlist.add_gate nl Cell.Sdff [| d; si; se |] in
  Netlist.add_po nl "q" ff;
  let load pi st =
    let _, st' = Sim.eval nl ~pi ~state:st in
    st'
  in
  (* se=1 loads si; se=0 loads d.  pi order: d, si, se. *)
  let st = Sim.initial_state nl in
  let st = load (Bitvec.of_string "110") st in
  (* se=1, si=1, d=0 *)
  check "scan-in wins when se=1" true (Bitvec.get st 0);
  let st = load (Bitvec.of_string "001") st in
  (* se=0, si=0, d=1 *)
  check "functional path when se=0" true (Bitvec.get st 0);
  let st = load (Bitvec.of_string "000") st in
  check "functional zero" false (Bitvec.get st 0)

(* Builder word helpers against integer arithmetic. *)
let mk_adder_nl w =
  let nl = Netlist.create "adder" in
  let a = Builder.input_word nl "a" w in
  let b = Builder.input_word nl "b" w in
  let zero = Netlist.add_gate nl Cell.Const0 [||] in
  let sum, cout = Builder.adder nl a b ~cin:zero in
  Builder.output_word nl "sum" sum;
  Netlist.add_po nl "cout" cout;
  nl

let eval_comb_ints nl ~width inputs =
  let pi = Bitvec.create (List.length (Netlist.pis nl)) in
  List.iteri
    (fun word_idx v ->
      for i = 0 to width - 1 do
        Bitvec.set pi ((word_idx * width) + i) ((v lsr i) land 1 = 1)
      done)
    inputs;
  let po, _ = Sim.eval nl ~pi ~state:(Sim.initial_state nl) in
  po

let test_builder_adder () =
  let w = 4 in
  let nl = mk_adder_nl w in
  for a = 0 to 15 do
    for b = 0 to 15 do
      let po = eval_comb_ints nl ~width:w [ a; b ] in
      let sum = Bitvec.to_int (Bitvec.sub po ~pos:0 ~len:w) in
      let cout = if Bitvec.get po w then 1 else 0 in
      check_int (Printf.sprintf "%d+%d" a b) (a + b) ((cout * 16) + sum)
    done
  done

let test_builder_subtractor_comparators () =
  let w = 4 in
  let nl = Netlist.create "cmp" in
  let a = Builder.input_word nl "a" w in
  let b = Builder.input_word nl "b" w in
  let diff, geq = Builder.subtractor nl a b in
  let eq = Builder.eq_word nl a b in
  let lt = Builder.lt_word nl a b in
  Builder.output_word nl "diff" diff;
  Netlist.add_po nl "geq" geq;
  Netlist.add_po nl "eq" eq;
  Netlist.add_po nl "lt" lt;
  for x = 0 to 15 do
    for y = 0 to 15 do
      let po = eval_comb_ints nl ~width:w [ x; y ] in
      let diff_v = Bitvec.to_int (Bitvec.sub po ~pos:0 ~len:w) in
      check_int "difference mod 16" ((x - y) land 15) diff_v;
      check "geq flag" true (Bitvec.get po w = (x >= y));
      check "eq flag" true (Bitvec.get po (w + 1) = (x = y));
      check "lt flag" true (Bitvec.get po (w + 2) = (x < y))
    done
  done

let test_builder_register_roundtrip () =
  let nl = Netlist.create "reg" in
  let d = Builder.input_word nl "d" 4 in
  let en = Netlist.add_pi nl "en" in
  let q = Builder.new_register nl ~name:"r" ~width:4 in
  Builder.connect_register nl ~q ~d ~enable:en ();
  Builder.output_word nl "q" q;
  let step v en_v st =
    let pi = Bitvec.create 5 in
    for i = 0 to 3 do
      Bitvec.set pi i ((v lsr i) land 1 = 1)
    done;
    Bitvec.set pi 4 en_v;
    let _, st' = Sim.eval nl ~pi ~state:st in
    st'
  in
  let st = Sim.initial_state nl in
  let st = step 0b1010 true st in
  check_int "register loads" 0b1010 (Bitvec.to_int st);
  let st = step 0b0101 false st in
  check_int "register holds" 0b1010 (Bitvec.to_int st)

let prop_word_parallel_matches_scalar =
  QCheck.Test.make ~name:"word engine agrees with scalar engine" ~count:50
    QCheck.(int_bound 100000)
    (fun seed ->
      let rng = Rng.create seed in
      let w = 3 in
      let nl = mk_adder_nl w in
      let npi = List.length (Netlist.pis nl) in
      (* A few random patterns through the word engine at once. *)
      let pats = List.init 8 (fun _ -> Rng.bitvec rng npi) in
      let pi_words = Array.make npi 0 in
      List.iteri
        (fun k p ->
          for i = 0 to npi - 1 do
            if Bitvec.get p i then pi_words.(i) <- pi_words.(i) lor (1 lsl k)
          done)
        pats;
      let v = Sim.eval_words nl ~pi:pi_words ~state:[||] ~inject:(fun _ x -> x) in
      let po_words = Sim.po_words nl v in
      List.for_all
        (fun (k, p) ->
          let po, _ = Sim.eval nl ~pi:p ~state:(Sim.initial_state nl) in
          let ok = ref true in
          Array.iteri
            (fun i w ->
              if Bitvec.get po i <> ((w lsr k) land 1 = 1) then ok := false)
            po_words;
          !ok)
        (List.mapi (fun k p -> (k, p)) pats))

let () =
  Alcotest.run "socet_netlist"
    [
      ("cell", [ Alcotest.test_case "arity/area" `Quick test_cell_arity_area ]);
      ( "netlist",
        [
          Alcotest.test_case "build" `Quick test_netlist_build;
          Alcotest.test_case "arity check" `Quick test_netlist_arity_check;
          Alcotest.test_case "area" `Quick test_netlist_area;
          Alcotest.test_case "cycle detection" `Quick test_comb_order_cycle_detection;
          Alcotest.test_case "ff breaks cycle" `Quick test_comb_order_ff_breaks_cycle;
        ] );
      ( "sim",
        [
          Alcotest.test_case "gate functions" `Quick test_sim_gate_functions;
          Alcotest.test_case "mux" `Quick test_sim_mux;
          Alcotest.test_case "dff delay" `Quick test_sim_dff_delay;
          Alcotest.test_case "dffe hold" `Quick test_sim_dffe_hold;
          Alcotest.test_case "sdff scan path" `Quick test_sim_sdff_scan_path;
          QCheck_alcotest.to_alcotest prop_word_parallel_matches_scalar;
        ] );
      ( "builder",
        [
          Alcotest.test_case "adder exhaustive" `Quick test_builder_adder;
          Alcotest.test_case "subtractor/comparators" `Quick
            test_builder_subtractor_comparators;
          Alcotest.test_case "register roundtrip" `Quick test_builder_register_roundtrip;
        ] );
    ]
