(* Dictionary-based diagnosis (Diagnose): on the fixed Systems 1-2 cores
   and on random cores, a device failing with exactly one injected fault
   must diagnose to a candidate set that contains that fault at Hamming
   distance 0 — the dictionary records the same syndrome [observe]
   reproduces. *)

open Socet_util
open Socet_cores
module Fault = Socet_atpg.Fault
module Podem = Socet_atpg.Podem
module Diagnose = Socet_atpg.Diagnose

let check = Alcotest.(check bool)

let vectors_and_faults nl =
  let stats = Podem.run ~random_patterns:32 nl in
  (stats.Podem.vectors, Fault.collapse nl)

(* Every [k]th fault, so systems with thousands of faults stay cheap. *)
let sample k xs = List.filteri (fun i _ -> i mod k = 0) xs

(* ------------------------------------------------------------------ *)
(* Fixed systems                                                       *)
(* ------------------------------------------------------------------ *)

let test_systems_dictionary () =
  List.iter
    (fun soc ->
      List.iter
        (fun ci ->
          let nl = ci.Socet_core.Soc.ci_netlist in
          let vectors, faults = vectors_and_faults nl in
          let dict = Diagnose.build nl ~vectors ~faults in
          let res = Diagnose.distinguishable dict in
          check "resolution is a percentage" true (res >= 0.0 && res <= 100.0);
          List.iter
            (fun fault ->
              let observed = Diagnose.observe nl ~vectors ~fault in
              (match Diagnose.syndrome_of dict fault with
              | Some s ->
                  check "dictionary records the observed syndrome" true
                    (Bitvec.equal s observed)
              | None -> Alcotest.fail "collapsed fault missing from dictionary");
              let candidates = Diagnose.diagnose dict observed in
              check "injected fault among exact matches" true
                (List.exists
                   (fun (f, d) -> d = 0 && Fault.equal f fault)
                   candidates))
            (sample 17 faults))
        soc.Socet_core.Soc.insts)
    [ Systems.system1 (); Systems.system2 () ]

(* ------------------------------------------------------------------ *)
(* Random cores                                                        *)
(* ------------------------------------------------------------------ *)

let prop_injected_fault_is_candidate =
  QCheck.Test.make ~name:"injected fault diagnosed at distance 0" ~count:8
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let nl = Socet_synth.Elaborate.core_to_netlist (Gen.random_core rng) in
      let vectors, faults = vectors_and_faults nl in
      faults = []
      || begin
           let dict = Diagnose.build nl ~vectors ~faults in
           let fault = List.nth faults (Rng.int rng (List.length faults)) in
           let observed = Diagnose.observe nl ~vectors ~fault in
           let candidates = Diagnose.diagnose dict observed in
           List.exists (fun (f, d) -> d = 0 && Fault.equal f fault) candidates
           (* Ranking invariant: best candidates first. *)
           && (let ds = List.map snd candidates in
               ds = List.sort compare ds)
         end)

let () =
  Alcotest.run "socet_diagnose"
    [
      ( "systems",
        [ Alcotest.test_case "dictionary round-trip" `Quick test_systems_dictionary ] );
      ("random", [ QCheck_alcotest.to_alcotest prop_injected_fault_is_candidate ]);
    ]
