(* The bounded, memoized optimizer against its golden models:

   - memoized minimize_time / minimize_area must be bit-identical to the
     memo-disabled oracle (one full Schedule.build per move) on every
     shipped SOC and on random chained SOCs;
   - every trajectory point must replay cleanly through [Replay.check] —
     claimed TATs recomputed from the raw routes, reservation calendars
     re-booked without overlap, transparency latencies cross-checked
     against the version ladder (and, for the best points, the netlist);
   - a search budget must degrade to best-so-far, never raise, and
     [core.select.opt_steps] must never exceed the fuel. *)

open Socet_util
open Socet_core
open Socet_cores
module Obs = Socet_obs.Obs

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* Full structural signature of a design point — everything the golden
   comparison should see, including the requested-mux set. *)
let route_sig (r : Access.route) =
  (r.Access.r_target, r.Access.r_arrival, r.Access.r_departures,
   r.Access.r_added_smux)

let test_sig (t : Schedule.core_test) =
  ( t.Schedule.ct_inst,
    t.Schedule.ct_vectors,
    t.Schedule.ct_period,
    t.Schedule.ct_tail,
    t.Schedule.ct_time,
    List.map route_sig t.Schedule.ct_justify,
    List.map route_sig t.Schedule.ct_observe )

let point_sig (p : Select.point) =
  let s = p.Select.pt_schedule in
  ( ( p.Select.pt_choice,
      List.map
        (fun (m : Schedule.smux_request) ->
          (m.Schedule.sm_inst, m.Schedule.sm_port, m.Schedule.sm_dir))
        p.Select.pt_smuxes ),
    p.Select.pt_area,
    p.Select.pt_time,
    ( s.Schedule.s_total_time,
      s.Schedule.s_transparency_cost,
      s.Schedule.s_smux_cost,
      s.Schedule.s_controller_cost ),
    List.map test_sig s.Schedule.s_tests,
    List.sort compare
      (Hashtbl.fold (fun k v acc -> (k, v) :: acc) s.Schedule.s_usage []) )

let traj_sig t = List.map point_sig t

let systems () =
  [ ("system1", Systems.system1 ()); ("system2", Systems.system2 ());
    ("system3", Systems.system3 ()) ]

let counter name =
  Option.value ~default:0 (List.assoc_opt name (Obs.snapshot_counters ()))

(* ------------------------------------------------------------------ *)
(* Golden: memoized trajectories = oracle trajectories                  *)
(* ------------------------------------------------------------------ *)

let test_minimize_time_golden () =
  List.iter
    (fun (name, soc) ->
      List.iter
        (fun max_area ->
          let memo = Select.minimize_time ~use_memo:true soc ~max_area in
          let oracle = Select.minimize_time ~use_memo:false soc ~max_area in
          check
            (Printf.sprintf "%s max_area=%d" name max_area)
            true
            (traj_sig memo = traj_sig oracle))
        [ 400; 10_000 ])
    (systems ())

let test_minimize_area_golden () =
  List.iter
    (fun (name, soc) ->
      List.iter
        (fun max_time ->
          let memo = Select.minimize_area ~use_memo:true soc ~max_time in
          let oracle = Select.minimize_area ~use_memo:false soc ~max_time in
          check
            (Printf.sprintf "%s max_time=%d" name max_time)
            true
            (traj_sig memo = traj_sig oracle))
        [ 0; 4000 ])
    (systems ())

let test_memo_actually_memoizes () =
  (* The memoized path must both hit the memo and never fall back to a
     full Schedule.build; the oracle path must do only full builds. *)
  Obs.configure ();
  Obs.reset ();
  let soc = Systems.system1 () in
  ignore (Select.minimize_time ~use_memo:true soc ~max_area:10_000);
  let memo_hits = counter "core.select.opt_memo_hits" in
  let memo_full_builds = counter "core.schedule.full_builds" in
  let memo_steps = counter "core.select.opt_steps" in
  Obs.reset ();
  ignore (Select.minimize_time ~use_memo:false soc ~max_area:10_000);
  let oracle_full_builds = counter "core.schedule.full_builds" in
  Obs.disable ();
  check "memo path reuses routes" true (memo_hits > 0);
  check_int "memo path does no full builds" 0 memo_full_builds;
  check "optimizer stepped" true (memo_steps > 0);
  check "oracle path does full builds" true (oracle_full_builds > 0)

(* ------------------------------------------------------------------ *)
(* Replay: every claimed point survives the golden model               *)
(* ------------------------------------------------------------------ *)

let replay_clean label p =
  let issues = Replay.check p.Select.pt_schedule in
  if issues <> [] then
    Alcotest.failf "%s: %s" label
      (String.concat "; " (List.map Replay.pp_issue issues))

let test_replay_trajectories () =
  List.iter
    (fun (name, soc) ->
      List.iteri
        (fun i p -> replay_clean (Printf.sprintf "%s point %d" name i) p)
        (Select.minimize_time soc ~max_area:10_000);
      List.iteri
        (fun i p -> replay_clean (Printf.sprintf "%s area point %d" name i) p)
        (Select.minimize_area soc ~max_time:0))
    (systems ())

let test_replay_gate_level () =
  List.iter
    (fun (name, soc) ->
      let traj = Select.minimize_time soc ~max_area:10_000 in
      let best = Select.best_time_point traj in
      check_int
        (Printf.sprintf "%s best TAT consistent" name)
        best.Select.pt_time
        best.Select.pt_schedule.Schedule.s_total_time;
      let issues = Replay.check ~gate_level:true best.Select.pt_schedule in
      if issues <> [] then
        Alcotest.failf "%s gate-level: %s" name
          (String.concat "; " (List.map Replay.pp_issue issues)))
    [ ("system1", Systems.system1 ()); ("system2", Systems.system2 ()) ]

(* ------------------------------------------------------------------ *)
(* Budget: graceful exhaustion, never an exception                     *)
(* ------------------------------------------------------------------ *)

let test_zero_budget_returns_seed () =
  let soc = Systems.system2 () in
  let b = Budget.create ~label:"select.opt" ~steps:0 () in
  let traj = Select.minimize_time ~budget:b soc ~max_area:10_000 in
  check_int "trajectory is just the seed" 1 (List.length traj);
  check "budget reports exhaustion" true (Budget.exhausted b);
  let seed = List.hd (Select.minimize_time ~use_memo:false soc ~max_area:0) in
  check "seed point is the unbudgeted seed" true
    (point_sig (List.hd traj) = point_sig seed)

let test_tiny_budgets_degrade () =
  let soc = Systems.system1 () in
  let full = Select.minimize_time soc ~max_area:10_000 in
  List.iter
    (fun steps ->
      let b = Budget.create ~label:"select.opt" ~steps () in
      let traj = Select.minimize_time ~budget:b soc ~max_area:10_000 in
      check
        (Printf.sprintf "steps=%d yields a non-empty prefix" steps)
        true
        (traj <> []
        && List.length traj <= List.length full
        && traj_sig traj
           = traj_sig
               (List.filteri (fun i _ -> i < List.length traj) full)))
    [ 1; 5; 50 ]

let test_opt_steps_bounded_by_fuel () =
  Obs.configure ();
  let soc = Systems.system2 () in
  List.iter
    (fun steps ->
      Obs.reset ();
      let b = Budget.create ~label:"select.opt" ~steps () in
      ignore (Select.minimize_time ~budget:b soc ~max_area:10_000);
      let taken = counter "core.select.opt_steps" in
      check
        (Printf.sprintf "opt_steps %d <= fuel %d" taken steps)
        true (taken <= steps))
    [ 0; 1; 5; 50; 1000 ];
  Obs.disable ()

(* ------------------------------------------------------------------ *)
(* Random SOCs: the fuzz versions of the golden + replay suites        *)
(* ------------------------------------------------------------------ *)

let prop_random_soc_golden =
  QCheck.Test.make ~name:"fuzz: memoized optimizer = oracle on random SOCs"
    ~count:6
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let soc = Gen.random_soc rng in
      traj_sig (Select.minimize_time ~use_memo:true soc ~max_area:10_000)
      = traj_sig (Select.minimize_time ~use_memo:false soc ~max_area:10_000)
      && traj_sig (Select.minimize_area ~use_memo:true soc ~max_time:0)
         = traj_sig (Select.minimize_area ~use_memo:false soc ~max_time:0))

let prop_random_soc_replay =
  QCheck.Test.make ~name:"fuzz: random-SOC trajectories replay cleanly"
    ~count:6
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let soc = Gen.random_soc rng in
      List.for_all
        (fun (p : Select.point) -> Replay.check p.Select.pt_schedule = [])
        (Select.minimize_time soc ~max_area:10_000))

let () =
  Alcotest.run "socet_select"
    [
      ( "golden",
        [
          Alcotest.test_case "minimize_time memo = oracle" `Quick
            test_minimize_time_golden;
          Alcotest.test_case "minimize_area memo = oracle" `Quick
            test_minimize_area_golden;
          Alcotest.test_case "memo hits counted, no full builds" `Quick
            test_memo_actually_memoizes;
        ] );
      ( "replay",
        [
          Alcotest.test_case "trajectory points replay cleanly" `Quick
            test_replay_trajectories;
          Alcotest.test_case "best points survive gate-level replay" `Slow
            test_replay_gate_level;
        ] );
      ( "budget",
        [
          Alcotest.test_case "zero budget returns the seed" `Quick
            test_zero_budget_returns_seed;
          Alcotest.test_case "tiny budgets yield trajectory prefixes" `Quick
            test_tiny_budgets_degrade;
          Alcotest.test_case "opt_steps never exceeds fuel" `Quick
            test_opt_steps_bounded_by_fuel;
        ] );
      ( "fuzz",
        [
          QCheck_alcotest.to_alcotest prop_random_soc_golden;
          QCheck_alcotest.to_alcotest prop_random_soc_replay;
        ] );
    ]
