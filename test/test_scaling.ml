(* The coarse-grained multicore contract, end to end: random SOCs pushed
   through every parallel engine — combinational and sequential fault
   simulation, the full PODEM run (speculative-window deterministic
   phase included) and the design-space sweep — must produce
   byte-identical results at 1, 2 and 4 pool domains.  "Byte-identical"
   means full detected-fault lists (order included), the exact vector
   sets, and full schedule signatures — not just coverage numbers.
   This suite is the determinism half of the CI scaling gate; the bench
   `parallel` section is the speedup half. *)

open Socet_util
open Socet_core
open Socet_cores
module Fsim = Socet_atpg.Fsim
module Fault = Socet_atpg.Fault
module Podem = Socet_atpg.Podem

let with_domains n f =
  Pool.set_size n;
  Fun.protect ~finally:(fun () -> Pool.set_size 1) f

let soc_netlists seed =
  let soc = Gen.random_soc ~hetero:(seed mod 2 = 0) (Rng.create seed) in
  List.map (fun ci -> ci.Soc.ci_netlist) soc.Soc.insts

let fault_sig fs = List.map (fun (f : Fault.t) -> (f.f_net, f.f_stuck)) fs

(* Same baseline at 1 domain, re-run at 2 and 4: any scheduling
   dependence in the merge order shows up as a signature mismatch. *)
let domain_invariant sig_of =
  let base = with_domains 1 sig_of in
  with_domains 2 sig_of = base && with_domains 4 sig_of = base

let prop_fsim_comb_scaling =
  QCheck.Test.make ~name:"run_comb byte-identical at 1/2/4 domains" ~count:4
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Rng.create (seed + 5) in
      List.for_all
        (fun nl ->
          let faults = Fault.collapse nl in
          let vectors =
            List.init 70 (fun _ -> Rng.bitvec rng (Fsim.vector_length nl))
          in
          domain_invariant (fun () ->
              fault_sig (Fsim.run_comb nl ~vectors ~faults)))
        (soc_netlists seed))

let prop_fsim_seq_scaling =
  QCheck.Test.make ~name:"run_seq byte-identical at 1/2/4 domains" ~count:4
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Rng.create (seed + 17) in
      List.for_all
        (fun nl ->
          let faults = Fault.collapse nl in
          let npi = List.length (Socet_netlist.Netlist.pis nl) in
          let inputs = List.init 12 (fun _ -> Rng.bitvec rng npi) in
          domain_invariant (fun () ->
              fault_sig (Fsim.run_seq nl ~inputs ~faults)))
        (soc_netlists seed))

(* The whole Podem.run result: exact vector set (content and order),
   detected/redundant/aborted partitions and the derived figures.  The
   speculative windows of the deterministic phase must replay the serial
   engine exactly, so everything here is domain-count-independent. *)
let podem_sig (s : Podem.stats) =
  ( List.map Bitvec.to_string s.Podem.vectors,
    fault_sig s.Podem.detected,
    fault_sig s.Podem.redundant,
    fault_sig s.Podem.aborted,
    s.Podem.total_faults,
    s.Podem.coverage,
    s.Podem.efficiency )

let prop_podem_scaling =
  QCheck.Test.make ~name:"Podem.run byte-identical at 1/2/4 domains" ~count:4
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      List.for_all
        (fun nl ->
          (* Few random patterns: leave real work for the deterministic
             phase, whose windowing is what this property gates. *)
          domain_invariant (fun () ->
              podem_sig (Podem.run ~random_patterns:16 nl)))
        (soc_netlists seed))

let route_sig (r : Access.route) =
  ( r.Access.r_target,
    r.Access.r_arrival,
    r.Access.r_departures,
    r.Access.r_added_smux )

let test_sig (t : Schedule.core_test) =
  ( t.Schedule.ct_inst,
    t.Schedule.ct_vectors,
    t.Schedule.ct_period,
    t.Schedule.ct_tail,
    t.Schedule.ct_time,
    List.map route_sig t.Schedule.ct_justify,
    List.map route_sig t.Schedule.ct_observe )

let point_sig (p : Select.point) =
  let s = p.Select.pt_schedule in
  ( p.Select.pt_choice,
    p.Select.pt_area,
    p.Select.pt_time,
    ( s.Schedule.s_total_time,
      s.Schedule.s_transparency_cost,
      s.Schedule.s_smux_cost,
      s.Schedule.s_controller_cost ),
    List.map test_sig s.Schedule.s_tests,
    List.sort compare
      (Hashtbl.fold (fun k v acc -> (k, v) :: acc) s.Schedule.s_usage []) )

let prop_design_space_scaling =
  QCheck.Test.make
    ~name:"design_space byte-identical at 1/2/4 domains" ~count:3
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let soc = Gen.random_soc ~hetero:(seed mod 2 = 0) (Rng.create seed) in
      domain_invariant (fun () ->
          List.map point_sig (Select.design_space soc)))

let () =
  Alcotest.run "socet_scaling"
    [
      ( "determinism",
        [
          QCheck_alcotest.to_alcotest prop_fsim_comb_scaling;
          QCheck_alcotest.to_alcotest prop_fsim_seq_scaling;
          QCheck_alcotest.to_alcotest prop_podem_scaling;
          QCheck_alcotest.to_alcotest prop_design_space_scaling;
        ] );
    ]
