(* The persistent result cache (lib/cache) and its content addresses:
   structural-hash invariances, the on-disk store's integrity/eviction
   behaviour, and the end-to-end contract — cached results byte-identical
   to cold computes, incremental invalidation bounded to the edit. *)

open Socet_util
open Socet_netlist
module Cache = Socet_cache.Cache
module Store = Socet_cache.Store
module Soc = Socet_core.Soc

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* Fresh scratch directories; cleaned best-effort (the suite's tmp root
   is disposable anyway). *)
let dir_counter = ref 0

let fresh_dir () =
  incr dir_counter;
  Filename.concat
    (Filename.get_temp_dir_name ())
    (Printf.sprintf "socet-cache-test-%d-%d" (Unix.getpid ()) !dir_counter)

let with_fresh_store ?limit_bytes f =
  let dir = fresh_dir () in
  match Store.open_store ?limit_bytes dir with
  | Error e -> Alcotest.failf "open_store: %s" (Error.to_string e)
  | Ok s -> f dir s

(* ------------------------------------------------------------------ *)
(* Structural hash: unit cases                                         *)
(* ------------------------------------------------------------------ *)

(* Two AND/OR netlists that differ only in gate names and in the
   declaration order of the two independent internal gates. *)
let build_pair ~swap ~names nl =
  let a = Netlist.add_pi nl "a" in
  let b = Netlist.add_pi nl "b" in
  let mk i kind =
    Netlist.add_gate nl ?name:(if names then Some (Printf.sprintf "g%d" i) else None)
      kind [| a; b |]
  in
  let x, y =
    if swap then
      let y = mk 0 Cell.Or2 in
      let x = mk 1 Cell.And2 in
      (x, y)
    else
      let x = mk 2 Cell.And2 in
      let y = mk 3 Cell.Or2 in
      (x, y)
  in
  Netlist.add_po nl "o1" x;
  Netlist.add_po nl "o2" y

let test_hash_rename_and_reorder_neutral () =
  let nl1 = Netlist.create "n1" in
  build_pair ~swap:false ~names:true nl1;
  let nl2 = Netlist.create "completely-different-name" in
  build_pair ~swap:true ~names:false nl2;
  check_str "names and internal declaration order are hash-neutral"
    (Structhash.netlist nl1) (Structhash.netlist nl2)

let test_hash_functional_edit_sensitive () =
  let nl1 = Netlist.create "n" in
  build_pair ~swap:false ~names:false nl1;
  let h = Structhash.netlist nl1 in
  (* Kind change. *)
  let nl2 = Netlist.create "n" in
  let a = Netlist.add_pi nl2 "a" in
  let b = Netlist.add_pi nl2 "b" in
  let x = Netlist.add_gate nl2 Cell.Nand2 [| a; b |] in
  let y = Netlist.add_gate nl2 Cell.Or2 [| a; b |] in
  Netlist.add_po nl2 "o1" x;
  Netlist.add_po nl2 "o2" y;
  check "kind change changes the hash" true (h <> Structhash.netlist nl2);
  (* PO swap: positional interface identity. *)
  let nl3 = Netlist.create "n" in
  let a = Netlist.add_pi nl3 "a" in
  let b = Netlist.add_pi nl3 "b" in
  let x = Netlist.add_gate nl3 Cell.And2 [| a; b |] in
  let y = Netlist.add_gate nl3 Cell.Or2 [| a; b |] in
  Netlist.add_po nl3 "o1" y;
  Netlist.add_po nl3 "o2" x;
  check "swapping PO drivers changes the hash" true (h <> Structhash.netlist nl3)

let test_hash_asymmetric_pins () =
  (* Mux2(sel, a, b) vs Mux2(sel, b, a): same multiset of fanins, pins
     swapped — the pin order must be part of each gate's label. *)
  let build flip =
    let nl = Netlist.create "m" in
    let s = Netlist.add_pi nl "s" in
    let a = Netlist.add_pi nl "a" in
    let b = Netlist.add_pi nl "b" in
    let m =
      Netlist.add_gate nl Cell.Mux2 (if flip then [| s; b; a |] else [| s; a; b |])
    in
    Netlist.add_po nl "y" m;
    Structhash.netlist nl
  in
  check "swapped mux data pins change the hash" true (build false <> build true)

(* ------------------------------------------------------------------ *)
(* Structural hash: qcheck properties over the random-core generator   *)
(* ------------------------------------------------------------------ *)

let elaborated seed =
  let rng = Rng.create seed in
  Socet_synth.Elaborate.core_to_netlist (Gen.random_core rng)

let prop_hash_deterministic =
  QCheck.Test.make ~name:"cache: structural hash deterministic across builds"
    ~count:60
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      Structhash.netlist (elaborated seed) = Structhash.netlist (elaborated seed))

let prop_hash_edit_sensitive =
  QCheck.Test.make
    ~name:"cache: inverter-pair splice (functional edit) changes the hash"
    ~count:60
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let nl = elaborated seed in
      let h = Structhash.netlist nl in
      match Netlist.pos nl with
      | [] -> QCheck.assume_fail ()
      | (po, net) :: _ ->
          let a = Netlist.add_gate nl Cell.Inv [| net |] in
          let b = Netlist.add_gate nl Cell.Inv [| a |] in
          Netlist.replace_po nl po b;
          h <> Structhash.netlist nl)

(* ------------------------------------------------------------------ *)
(* Store: roundtrip, integrity, eviction                               *)
(* ------------------------------------------------------------------ *)

let test_store_roundtrip () =
  with_fresh_store @@ fun dir s ->
  check "fresh store misses" true (Store.find s ~ns:"t1" ~key:"k" = None);
  Store.store s ~ns:"t1" ~key:"k" "payload-bytes";
  check "hit after store" true (Store.find s ~ns:"t1" ~key:"k" = Some "payload-bytes");
  check "other namespace misses" true (Store.find s ~ns:"t2" ~key:"k" = None);
  check "other key misses" true (Store.find s ~ns:"t1" ~key:"k2" = None);
  (* A second handle on the same directory sees the entry (the on-disk
     format, not the in-process index, is the source of truth). *)
  match Store.open_store dir with
  | Error e -> Alcotest.failf "reopen: %s" (Error.to_string e)
  | Ok s2 ->
      check "persists across reopen" true
        (Store.find s2 ~ns:"t1" ~key:"k" = Some "payload-bytes")

let test_store_rejects_bad_dir () =
  let file = Filename.temp_file "socet-cache-test" ".notadir" in
  (match Store.open_store file with
  | Ok _ -> Alcotest.fail "opened a store rooted at a regular file"
  | Error e ->
      check "validation error" true (e.Error.err_kind = Error.Validation);
      check_int "maps to exit code 3" 3 (Error.exit_code e));
  Sys.remove file

let entry_file dir ~ns =
  let d = Filename.concat dir ns in
  match Array.to_list (Sys.readdir d) with
  | [ f ] -> Filename.concat d f
  | l -> Alcotest.failf "expected one entry file in %s, found %d" d (List.length l)

let test_store_corruption_is_a_miss () =
  with_fresh_store @@ fun dir s ->
  Store.store s ~ns:"c1" ~key:"k" "precious";
  let path = entry_file dir ~ns:"c1" in
  (* Truncate mid-entry: checksum cannot match. *)
  let full = In_channel.with_open_bin path In_channel.input_all in
  Out_channel.with_open_bin path (fun oc ->
      Out_channel.output_string oc (String.sub full 0 (String.length full / 2)));
  check "truncated entry reads as a miss" true (Store.find s ~ns:"c1" ~key:"k" = None);
  check "corrupt file removed" false (Sys.file_exists path);
  (* The slot is usable again. *)
  Store.store s ~ns:"c1" ~key:"k" "precious";
  check "hit after rewrite" true (Store.find s ~ns:"c1" ~key:"k" = Some "precious")

let test_store_flipped_byte_is_a_miss () =
  with_fresh_store @@ fun dir s ->
  Store.store s ~ns:"c2" ~key:"k" "precious";
  let path = entry_file dir ~ns:"c2" in
  let full = Bytes.of_string (In_channel.with_open_bin path In_channel.input_all) in
  let i = Bytes.length full - 20 in
  Bytes.set full i (Char.chr (Char.code (Bytes.get full i) lxor 0x41));
  Out_channel.with_open_bin path (fun oc -> Out_channel.output_bytes oc full);
  check "bit rot reads as a miss" true (Store.find s ~ns:"c2" ~key:"k" = None)

let test_store_eviction_bounded () =
  (* ~100-byte payloads against a 1 KiB limit: storing 30 entries must
     evict, and the tracked size must respect the bound throughout. *)
  with_fresh_store ~limit_bytes:1024 @@ fun _dir s ->
  for i = 1 to 30 do
    Store.store s ~ns:"ev" ~key:(string_of_int i) (String.make 100 'x');
    check "bytes within limit after every store" true (Store.bytes_used s <= 1024)
  done;
  check "old entries evicted" true (Store.find s ~ns:"ev" ~key:"1" = None);
  check "newest entry survives" true (Store.find s ~ns:"ev" ~key:"30" <> None)

(* ------------------------------------------------------------------ *)
(* Facade: scoping, typed memo                                         *)
(* ------------------------------------------------------------------ *)

let test_cache_facade_scoping () =
  check "disabled by default" false (Cache.enabled ());
  check "find is a no-op when disabled" true
    (Cache.find ~ns:"f" ~key:"k" = (None : int option));
  with_fresh_store @@ fun _dir s ->
  Cache.with_store (Some s) (fun () ->
      check "enabled inside with_store" true (Cache.enabled ());
      let computes = ref 0 in
      let v =
        Cache.memo ~ns:"f1" ~key:"k" (fun () ->
            incr computes;
            [ (1, "one"); (2, "two") ])
      in
      check "memo computes once" true (v = [ (1, "one"); (2, "two") ] && !computes = 1);
      let v2 = Cache.memo ~ns:"f1" ~key:"k" (fun () -> incr computes; []) in
      check "memo serves the stored value" true
        (v2 = [ (1, "one"); (2, "two") ] && !computes = 1));
  check "restored after with_store" false (Cache.enabled ())

let test_cache_scoreboard () =
  with_fresh_store @@ fun _dir s ->
  Cache.with_store (Some s) (fun () ->
      Cache.reset_scoreboard ();
      ignore (Cache.memo ~ns:"sb" ~key:"k" (fun () -> 42));
      ignore (Cache.memo ~ns:"sb" ~key:"k" (fun () -> 43));
      match List.assoc_opt "sb" (List.map (fun (ns, h, m) -> (ns, (h, m))) (Cache.scoreboard ())) with
      | Some (hits, misses) ->
          check_int "one miss" 1 misses;
          check_int "one hit" 1 hits
      | None -> Alcotest.fail "namespace missing from scoreboard")

(* ------------------------------------------------------------------ *)
(* End to end: warm runs byte-identical, invalidation bounded          *)
(* ------------------------------------------------------------------ *)

let fleet_render () =
  Socet_tam.Fleet.render (Socet_tam.Fleet.run ~seed:7 ~cores:2 ~count:3 ())

let test_warm_fleet_byte_identical () =
  let cold_nocache = fleet_render () in
  with_fresh_store @@ fun _dir s ->
  let cold = Cache.with_store (Some s) fleet_render in
  let warm =
    Cache.with_store (Some s) (fun () ->
        Cache.reset_scoreboard ();
        fleet_render ())
  in
  check_str "cold cached run matches uncached" cold_nocache cold;
  check_str "warm run byte-identical" cold warm;
  let hits = List.fold_left (fun acc (_, h, _) -> acc + h) 0 (Cache.scoreboard ()) in
  check "warm run actually hit the cache" true (hits > 0)

let test_incremental_blast_radius () =
  (* Edit one core of a two-core SOC: its ATPG and the TAM schedule
     recompute; every access route and version ladder is reused. *)
  let gen () = Socet_cores.Gen.random_soc ~cores:2 ~hetero:true (Rng.create 11) in
  let plan soc =
    let choice = List.map (fun ci -> (ci.Soc.ci_name, 1)) soc.Soc.insts in
    ignore (Socet_core.Schedule.build soc ~choice ());
    ignore (Socet_tam.Schedule.build soc)
  in
  with_fresh_store @@ fun _dir s ->
  Cache.with_store (Some s) @@ fun () ->
  plan (gen ());
  (* Warm replay: no recomputation at all. *)
  Cache.reset_scoreboard ();
  plan (gen ());
  List.iter
    (fun (ns, _, misses) -> check_int ("warm misses in " ^ ns) 0 misses)
    (Cache.scoreboard ());
  (* Edited replay. *)
  Cache.reset_scoreboard ();
  let soc = gen () in
  (match soc.Soc.insts with
  | ci :: _ -> (
      let nl = ci.Soc.ci_netlist in
      match Netlist.pos nl with
      | (po, net) :: _ ->
          let a = Netlist.add_gate nl Cell.Inv [| net |] in
          let b = Netlist.add_gate nl Cell.Inv [| a |] in
          Netlist.replace_po nl po b
      | [] -> Alcotest.fail "core has no PO")
  | [] -> Alcotest.fail "SOC has no cores");
  plan soc;
  let tally ns =
    match List.find_opt (fun (n, _, _) -> n = ns) (Cache.scoreboard ()) with
    | Some (_, h, m) -> (h, m)
    | None -> (0, 0)
  in
  let ph, pm = tally "podem1" in
  check_int "only the edited core's ATPG recomputes" 1 pm;
  check_int "the other core's ATPG is reused" 1 ph;
  let _, rm = tally "routes1" in
  check_int "no route recomputes (netlist edit leaves RTL alone)" 0 rm;
  let _, vm = tally "versions1" in
  check_int "no version ladder recomputes" 0 vm;
  let _, tm = tally "tamsched1" in
  check_int "the TAM schedule recomputes (test sets changed)" 1 tm

let () =
  Alcotest.run "cache"
    [
      ( "structhash",
        [
          Alcotest.test_case "rename/reorder neutral" `Quick
            test_hash_rename_and_reorder_neutral;
          Alcotest.test_case "functional edits sensitive" `Quick
            test_hash_functional_edit_sensitive;
          Alcotest.test_case "asymmetric pin order" `Quick test_hash_asymmetric_pins;
          QCheck_alcotest.to_alcotest prop_hash_deterministic;
          QCheck_alcotest.to_alcotest prop_hash_edit_sensitive;
        ] );
      ( "store",
        [
          Alcotest.test_case "roundtrip and reopen" `Quick test_store_roundtrip;
          Alcotest.test_case "bad directory rejected" `Quick test_store_rejects_bad_dir;
          Alcotest.test_case "truncation is a clean miss" `Quick
            test_store_corruption_is_a_miss;
          Alcotest.test_case "bit rot is a clean miss" `Quick
            test_store_flipped_byte_is_a_miss;
          Alcotest.test_case "eviction respects the bound" `Quick
            test_store_eviction_bounded;
        ] );
      ( "facade",
        [
          Alcotest.test_case "activation scoping + typed memo" `Quick
            test_cache_facade_scoping;
          Alcotest.test_case "per-namespace scoreboard" `Quick test_cache_scoreboard;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "warm fleet byte-identical" `Quick
            test_warm_fleet_byte_identical;
          Alcotest.test_case "incremental blast radius" `Quick
            test_incremental_blast_radius;
        ] );
    ]
