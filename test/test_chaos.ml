(* Chaos suite: the robustness contract of the whole pipeline.

   Under ANY combination of injected failures — corrupted netlists,
   malformed RTL, tripped chaos sites, exhausted budgets — every engine
   must terminate with either a valid degraded result or a structured
   Socet_util.Error.t.  An uncaught exception anywhere is a bug; these
   properties exist to find it. *)

open Socet_util
open Socet_rtl
open Socet_core
module Netlist = Socet_netlist.Netlist
module Cell = Socet_netlist.Cell
module Validate = Socet_netlist.Validate

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* The CI chaos job runs this suite across a seed matrix; the offset
   varies every injected-failure stream without touching the properties
   themselves. *)
let seed_base =
  match Sys.getenv_opt "SOCET_CHAOS_SEED" with
  | Some s -> ( try 1000 * int_of_string s with _ -> 0)
  | None -> 0

(* Only these may escape an engine boundary; anything else is the bug
   this suite hunts. *)
let structured f =
  try
    ignore (f ());
    true
  with
  | Error.Socet_error _ -> true
  | Budget.Exhausted_exn _ -> true
  | _ -> false

(* ------------------------------------------------------------------ *)
(* Random netlists and their corruptions                               *)
(* ------------------------------------------------------------------ *)

let random_netlist rng =
  let nl = Netlist.create "chaosnl" in
  let n_pi = 2 + Rng.int rng 3 in
  let nets =
    ref (Array.of_list
           (List.init n_pi (fun i -> Netlist.add_pi nl (Printf.sprintf "i%d" i))))
  in
  let gates = ref [] in
  let kinds = [| Cell.Inv; Cell.Buf; Cell.And2; Cell.Or2; Cell.Xor2; Cell.Nand2 |] in
  for _ = 1 to 5 + Rng.int rng 20 do
    let kind = kinds.(Rng.int rng (Array.length kinds)) in
    let pick () = !nets.(Rng.int rng (Array.length !nets)) in
    let g = Netlist.add_gate nl kind (Array.init (Cell.arity kind) (fun _ -> pick ())) in
    gates := g :: !gates;
    nets := Array.append !nets [| g |]
  done;
  Netlist.add_po nl "o0" !nets.(Array.length !nets - 1);
  (nl, !gates)

(* The construction API rejects malformed inputs, so corruption has to go
   through the test-only backdoors: dangling fanin ids and retyped gates
   that close combinational loops. *)
let corrupt rng nl gates =
  let g = List.nth gates (Rng.int rng (List.length gates)) in
  match Rng.int rng 3 with
  | 0 -> Netlist.corrupt_fanin nl g ~pin:0 (Netlist.gate_count nl + 17 + Rng.int rng 100)
  | 1 -> Netlist.corrupt_fanin nl g ~pin:0 (-1 - Rng.int rng 5)
  | _ -> Netlist.set_kind nl g Cell.Inv [| g |] (* self-loop *)

let prop_corrupt_netlist_validates =
  QCheck.Test.make ~name:"chaos: corrupted netlists are caught, never crash"
    ~count:120
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let nl, gates = random_netlist rng in
      corrupt rng nl gates;
      (* The validator reports every defect as data... *)
      (match Validate.check nl with
      | Ok () -> false
      | Error (e :: _) -> e.Error.err_engine = "netlist"
      | Error [] -> false)
      (* ...check_exn raises only the structured exception... *)
      && structured (fun () -> Validate.check_exn nl)
      (* ...and the topological-order entry point degrades to a result. *)
      && structured (fun () -> Netlist.comb_order_result nl))

let prop_corrupt_netlist_guard =
  QCheck.Test.make ~name:"chaos: Error.guard converts every corruption escape"
    ~count:60
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let nl, gates = random_netlist rng in
      corrupt rng nl gates;
      match Error.guard ~engine:"netlist" (fun () -> Validate.check_exn nl) with
      | Error e -> Error.exit_code e > 0
      | Ok () -> false)

(* ------------------------------------------------------------------ *)
(* Malformed RTL                                                       *)
(* ------------------------------------------------------------------ *)

let prop_malformed_rtl_structured =
  QCheck.Test.make ~name:"chaos: malformed RTL raises structured errors only"
    ~count:60
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      structured (fun () ->
          match Rng.int rng 5 with
          | 0 ->
              let c = Rtl_core.create "dup" in
              Rtl_core.add_input c "X" 4;
              Rtl_core.add_reg c "X" (1 + Rng.int rng 8)
          | 1 ->
              let c = Rtl_core.create "w" in
              Rtl_core.add_input c "IN" (2 + Rng.int rng 7);
              Rtl_core.add_reg c "R" 1;
              Rtl_core.add_transfer c ~src:(Rtl_core.port c "IN")
                ~dst:(Rtl_core.reg c "R") ();
              Rtl_core.validate c
          | 2 ->
              let c = Rtl_core.create "dir" in
              Rtl_core.add_input c "IN" 4;
              Rtl_core.add_output c "OUT" 4;
              Rtl_core.add_transfer c ~src:(Rtl_core.port c "OUT")
                ~dst:(Rtl_core.port c "OUT") ();
              Rtl_core.validate c
          | 3 -> ignore (Rtl_core.port (Rtl_core.create "u") "nope")
          | _ -> ignore (Rtl_types.bits (1 + Rng.int rng 6) 0)))

(* ------------------------------------------------------------------ *)
(* Chaos-tripped engines                                               *)
(* ------------------------------------------------------------------ *)

let small_core () =
  let c = Rtl_core.create "chaoscore" in
  Rtl_core.add_input c "IN" 4;
  Rtl_core.add_output c "OUT" 4;
  Rtl_core.add_reg c "R1" 4;
  Rtl_core.add_reg c "R2" 4;
  let t = Rtl_core.add_transfer c in
  t ~src:(Rtl_core.port c "IN") ~dst:(Rtl_core.reg c "R1") ();
  t ~src:(Rtl_core.reg c "R1") ~dst:(Rtl_core.reg c "R2") ();
  t ~kind:Rtl_types.Direct ~src:(Rtl_core.reg c "R2") ~dst:(Rtl_core.port c "OUT") ();
  Rtl_core.validate c;
  c

let prop_chaos_engines_terminate =
  QCheck.Test.make
    ~name:"chaos: tripped sites still terminate with degraded answers" ~count:60
    QCheck.(pair (int_bound 1_000_000) (int_bound 2))
    (fun (seed, p) ->
      let prob = [| 0.3; 0.7; 1.0 |].(p) in
      Chaos.configure ~seed:(seed + seed_base) ~prob true;
      let ok =
        structured (fun () ->
            let rcg = Rcg.of_core (small_core ()) in
            ignore (Socet_scan.Hscan.insert rcg);
            ignore (Version.generate rcg);
            List.iter
              (fun input ->
                ignore
                  (Tsearch.propagate rcg ~allowed:(fun _ -> true) ~input ()))
              (Rcg.input_ids rcg))
      in
      Chaos.configure false;
      ok)

(* ------------------------------------------------------------------ *)
(* Budget exhaustion                                                   *)
(* ------------------------------------------------------------------ *)

let budget_nl = lazy (Socet_synth.Elaborate.core_to_netlist (small_core ()))

let prop_budget_atpg_terminates =
  QCheck.Test.make ~name:"chaos: starved ATPG budgets degrade, never hang"
    ~count:40
    QCheck.(int_bound 500)
    (fun fuel ->
      let nl = Lazy.force budget_nl in
      let open Socet_atpg in
      let b = Budget.create ~label:"starved" ~steps:fuel () in
      let st = Podem.run ~budget:b nl in
      let d = Dalg.run ~budget:(Budget.create ~steps:fuel ()) nl in
      (* Every fault is accounted for on some rung; coverage is sane. *)
      List.length st.Podem.detected
      + List.length st.Podem.redundant
      + List.length st.Podem.aborted
      = st.Podem.total_faults
      && st.Podem.coverage >= 0.0
      && st.Podem.coverage <= 100.0
      && d.Dalg.detected + d.Dalg.redundant + d.Dalg.aborted = d.Dalg.total)

let prop_budget_ladder_total =
  QCheck.Test.make
    ~name:"chaos: per-fault ladder absorbs starved budgets" ~count:30
    QCheck.(int_bound 200)
    (fun fuel ->
      let nl = Lazy.force budget_nl in
      let open Socet_atpg in
      let b = Budget.create ~steps:fuel () in
      List.for_all
        (fun f ->
          let r = Resilient.generate_fault ~budget:b nl f in
          match r.Resilient.a_outcome with
          | Podem.Test _ | Podem.Untestable | Podem.Aborted -> true)
        (Fault.collapse nl))

(* ------------------------------------------------------------------ *)
(* Targeted: the per-core fallback rung end to end                     *)
(* ------------------------------------------------------------------ *)

let soc1 = lazy (Socet_cores.Systems.system1 ())
let all_v1 soc = List.map (fun ci -> (ci.Soc.ci_name, 1)) soc.Soc.insts

let test_access_chaos_falls_back () =
  let soc = Lazy.force soc1 in
  Chaos.configure ~seed:(3 + seed_base) ~prob:1.0 ~only:[ "core.access" ] true;
  let r = Resilient.plan soc ~choice:(all_v1 soc) () in
  Chaos.configure false;
  match r with
  | Error e -> Alcotest.failf "expected degraded plan, got %s" (Error.to_string e)
  | Ok p ->
      check_int "every core fell back" (List.length soc.Soc.insts)
        p.Resilient.p_fallbacks;
      check "fallback time positive" true (p.Resilient.p_total_time > 0);
      check "fallback area positive" true
        (List.for_all
           (fun c -> c.Resilient.p_area > 0)
           p.Resilient.p_cores)

let test_plan_recovers_after_chaos () =
  let soc = Lazy.force soc1 in
  Chaos.configure false;
  match Resilient.plan soc ~choice:(all_v1 soc) () with
  | Error e -> Alcotest.failf "clean plan failed: %s" (Error.to_string e)
  | Ok p ->
      check_int "no fallbacks" 0 p.Resilient.p_fallbacks;
      check "all transparency" true
        (List.for_all (fun c -> c.Resilient.p_rung = Resilient.Transparency)
           p.Resilient.p_cores)

let test_exhausted_budget_plan () =
  let soc = Lazy.force soc1 in
  let b = Budget.create ~label:"dead" ~steps:0 () in
  ignore (Budget.spend b);
  (* trip the sticky flag *)
  match Resilient.plan ~budget:b soc ~choice:(all_v1 soc) () with
  | Ok _ -> Alcotest.fail "expected Exhausted error from a dead budget"
  | Error e ->
      check "kind exhausted" true (e.Error.err_kind = Error.Exhausted);
      check_int "exit code 4" 4 (Error.exit_code e)

let test_chaos_report_counts () =
  Chaos.configure ~seed:0 ~prob:1.0 true;
  check "armed" true (Chaos.enabled ());
  check "site trips" true (Chaos.trip "core.tsearch.solve");
  ignore (Chaos.trip "core.access.justify");
  check "report non-empty" true (Chaos.report () <> []);
  Chaos.configure false;
  check "disarmed" false (Chaos.enabled ());
  check "off means no trips" false (Chaos.trip "core.tsearch.solve")

let test_exit_code_mapping () =
  let code k = Error.exit_code (Error.make ~kind:k ~engine:"t" "m") in
  check_int "invalid input" 3 (code Error.Invalid_input);
  check_int "validation" 3 (code Error.Validation);
  check_int "exhausted" 4 (code Error.Exhausted);
  check_int "internal" 1 (code Error.Internal)

let () =
  (* Defensive: a crashed previous case must not leak an armed harness
     into the next. *)
  Chaos.configure false;
  Alcotest.run "socet_chaos"
    [
      ( "properties",
        [
          QCheck_alcotest.to_alcotest prop_corrupt_netlist_validates;
          QCheck_alcotest.to_alcotest prop_corrupt_netlist_guard;
          QCheck_alcotest.to_alcotest prop_malformed_rtl_structured;
          QCheck_alcotest.to_alcotest prop_chaos_engines_terminate;
          QCheck_alcotest.to_alcotest prop_budget_atpg_terminates;
          QCheck_alcotest.to_alcotest prop_budget_ladder_total;
        ] );
      ( "targeted",
        [
          Alcotest.test_case "access chaos -> FSCAN-BSCAN fallback" `Quick
            test_access_chaos_falls_back;
          Alcotest.test_case "plan recovers once chaos is off" `Quick
            test_plan_recovers_after_chaos;
          Alcotest.test_case "dead budget -> structured Exhausted" `Quick
            test_exhausted_budget_plan;
          Alcotest.test_case "report counts trips" `Quick test_chaos_report_counts;
          Alcotest.test_case "exit code mapping" `Quick test_exit_code_mapping;
        ] );
    ]
