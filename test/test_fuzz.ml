(* Cross-layer fuzzing: generate random (but valid) RTL cores and check
   the invariants that every layer of the flow promises, ending with the
   strongest one — values really ride the discovered transparency paths
   through the synthesized gates. *)

open Socet_util
open Socet_rtl
open Rtl_types
open Socet_core
module Digraph = Socet_graph.Digraph

let w = Gen.w (* uniform register/port width keeps slice arithmetic honest *)

(* The random-core generator lives in [Gen] (shared with test_parallel). *)
let random_core = Gen.random_core

let check = Alcotest.(check bool)

let prop_hscan_covers_everything =
  QCheck.Test.make ~name:"fuzz: hscan feeds every register slice" ~count:120
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let core = random_core rng in
      let rcg = Rcg.of_core core in
      let _ = Socet_scan.Hscan.insert rcg in
      List.for_all
        (fun reg ->
          (* Every bit of every register is written by some marked edge. *)
          let covered =
            List.fold_left
              (fun acc (e : Rcg.edge_label Digraph.edge) ->
                if e.label.Rcg.e_hscan && e.dst = reg then
                  acc
                  lor (((1 lsl range_width e.label.Rcg.e_dst_range) - 1)
                      lsl e.label.Rcg.e_dst_range.lsb)
                else acc)
              0
              (Digraph.pred (Rcg.graph rcg) reg)
          in
          covered = (1 lsl w) - 1)
        (Rcg.reg_ids rcg))

let prop_hscan_marked_subgraph_acyclic =
  QCheck.Test.make ~name:"fuzz: hscan chains are acyclic" ~count:120
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let core = random_core rng in
      let rcg = Rcg.of_core core in
      let _ = Socet_scan.Hscan.insert rcg in
      (* Build the marked subgraph and topologically sort it. *)
      let g = Rcg.graph rcg in
      let marked = Digraph.create () in
      for _ = 1 to Digraph.node_count g do
        ignore (Digraph.add_node marked)
      done;
      List.iter
        (fun (e : Rcg.edge_label Digraph.edge) ->
          if e.label.Rcg.e_hscan then
            ignore (Digraph.add_edge marked ~src:e.src ~dst:e.dst ()))
        (Digraph.edges g);
      Socet_graph.Search.topological marked <> None)

let prop_version_ladder_invariants =
  QCheck.Test.make ~name:"fuzz: version ladders monotone and complete" ~count:80
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let core = random_core rng in
      let rcg = Rcg.of_core core in
      let _ = Socet_scan.Hscan.insert rcg in
      let versions = Version.generate rcg in
      versions <> []
      && (* overheads strictly increase along the ladder *)
      (let rec mono = function
         | a :: (b :: _ as rest) ->
             a.Version.v_overhead < b.Version.v_overhead && mono rest
         | _ -> true
       in
       mono versions)
      && (* v1 justifies every output and propagates every input *)
      (let v1 = List.hd versions in
       List.length v1.Version.v_just = List.length (Rcg.output_ids rcg)
       && List.length v1.Version.v_prop = List.length (Rcg.input_ids rcg))
      && (* pair latencies never get worse up the ladder *)
      (let rec pairs_ok = function
         | a :: (b :: _ as rest) ->
             List.for_all
               (fun (p : Version.pair) ->
                 match
                   Version.latency_between b ~input:p.Version.pr_input
                     ~output:p.Version.pr_output
                 with
                 | Some l -> l <= p.Version.pr_latency
                 | None -> true)
               a.Version.v_pairs
             && pairs_ok rest
         | _ -> true
       in
       pairs_ok versions))

let prop_solution_latency_consistent =
  QCheck.Test.make ~name:"fuzz: reported latency equals depth-schedule max" ~count:80
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let core = random_core rng in
      let rcg = Rcg.of_core core in
      let _ = Socet_scan.Hscan.insert rcg in
      let v1 = List.hd (Version.generate rcg) in
      List.for_all
        (fun (_, (s : Tsearch.sol)) ->
          let max_depth =
            List.fold_left (fun acc (_, d) -> max acc d) 0 s.Tsearch.s_depths
          in
          s.Tsearch.s_latency <= max_depth
          && s.Tsearch.s_latency >= 0
          && List.for_all (fun (_, cyc) -> cyc > 0) s.Tsearch.s_freezes)
        (v1.Version.v_just @ v1.Version.v_prop))

let prop_gate_level_transparency =
  QCheck.Test.make ~name:"fuzz: propagation paths carry data through gates"
    ~count:40
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let core = random_core rng in
      let rcg = Rcg.of_core core in
      let _ = Socet_scan.Hscan.insert rcg in
      let inputs = Rcg.input_ids rcg in
      List.for_all
        (fun input ->
          match
            Tsearch.propagate rcg ~prefer_hscan:true
              ~allowed:(fun _ -> true)
              ~input ()
          with
          | None -> true (* nothing found: nothing to validate *)
          | Some sol ->
              if
                List.exists
                  (fun (e : Rcg.edge_label Digraph.edge) ->
                    e.label.Rcg.e_transfer < 0)
                  sol.Tsearch.s_edges
              then true (* synthesized edges: not simulable *)
              else
                let name = (Rcg.node rcg input).Rcg.n_name in
                let value = Rng.bitvec rng w in
                Tsim.check_propagation rcg sol ~input:name ~value)
        inputs)

let prop_elaboration_sound =
  QCheck.Test.make ~name:"fuzz: elaboration yields a legal sequential netlist"
    ~count:120
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let core = random_core rng in
      let nl = Socet_synth.Elaborate.core_to_netlist core in
      let open Socet_netlist in
      Array.length (Netlist.comb_order nl) = Netlist.gate_count nl
      && List.length (Netlist.pis nl) = Rtl_core.input_bit_count core
      && List.length (Netlist.pos nl) = Rtl_core.output_bit_count core)

let prop_atpg_vectors_detect =
  QCheck.Test.make ~name:"fuzz: ATPG vectors detect what they claim" ~count:15
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let core = random_core rng in
      let nl = Socet_synth.Elaborate.core_to_netlist core in
      let stats = Socet_atpg.Podem.run ~random_patterns:32 nl in
      let redetected =
        Socet_atpg.Fsim.run_comb nl ~vectors:stats.Socet_atpg.Podem.vectors
          ~faults:(Socet_atpg.Fault.collapse nl)
      in
      List.length redetected = List.length stats.Socet_atpg.Podem.detected)

(* Malformed inputs: the generators above only emit valid cores; these
   two deliberately break the artifact afterwards and check the failure
   is always a structured error — never an uncaught exception from an
   engine's inner loop (the full combination matrix lives in
   test_chaos.ml; these keep the fuzz corpus honest too). *)

let prop_corrupted_elaboration_caught =
  QCheck.Test.make ~name:"fuzz: corrupted netlists never escape the validator"
    ~count:80
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let core = random_core rng in
      let open Socet_netlist in
      let nl = Socet_synth.Elaborate.core_to_netlist core in
      let victim =
        (* a combinational gate with fanin: skips PI pseudo-cells, and
           stays retypeable (set_kind refuses to turn a DFF into logic) *)
        let g = ref (-1) in
        for n = 0 to Netlist.gate_count nl - 1 do
          if
            !g < 0
            && Array.length (Netlist.fanin nl n) > 0
            && not (Cell.is_dff (Netlist.kind nl n))
          then g := n
        done;
        !g
      in
      victim >= 0
      && begin
           if Rng.bool rng then
             Netlist.corrupt_fanin nl victim ~pin:0
               (Netlist.gate_count nl + 1 + Rng.int rng 50)
           else Netlist.set_kind nl victim Cell.Inv [| victim |];
           (match Validate.check nl with
           | Error (e :: _) -> e.Socet_util.Error.err_engine = "netlist"
           | _ -> false)
           && (try
                 Validate.check_exn nl;
                 false
               with
              | Socet_util.Error.Socet_error _ -> true
              | _ -> false)
         end)

let prop_malformed_rtl_caught =
  QCheck.Test.make ~name:"fuzz: malformed RTL mutations raise structured errors"
    ~count:80
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Rng.create seed in
      let core = random_core rng in
      try
        (match Rng.int rng 3 with
        | 0 -> Rtl_core.add_reg core "R0" w (* duplicate name *)
        | 1 ->
            (* width-mismatched transfer, caught by validate *)
            Rtl_core.add_reg core "Wbad" (w + 3);
            Rtl_core.add_transfer core ~src:(Rtl_core.port core "I0")
              ~dst:(Rtl_core.reg core "Wbad") ();
            Rtl_core.validate core
        | _ -> ignore (Rtl_core.reg core "no_such_register"));
        false
      with
      | Socet_util.Error.Socet_error _ -> true
      | _ -> false)

let smoke_one_fuzz_core () =
  (* A deterministic instance of the generator, as a plain test. *)
  let rng = Rng.create 2024 in
  let core = random_core rng in
  Rtl_core.validate core;
  let rcg = Rcg.of_core core in
  let h = Socet_scan.Hscan.insert rcg in
  check "depth positive" true (h.Socet_scan.Hscan.depth > 0);
  check "versions exist" true (Version.generate rcg <> [])

let () =
  Alcotest.run "socet_fuzz"
    [
      ( "fuzz",
        [
          Alcotest.test_case "generator smoke" `Quick smoke_one_fuzz_core;
          QCheck_alcotest.to_alcotest prop_hscan_covers_everything;
          QCheck_alcotest.to_alcotest prop_hscan_marked_subgraph_acyclic;
          QCheck_alcotest.to_alcotest prop_version_ladder_invariants;
          QCheck_alcotest.to_alcotest prop_solution_latency_consistent;
          QCheck_alcotest.to_alcotest prop_elaboration_sound;
          QCheck_alcotest.to_alcotest prop_gate_level_transparency;
          QCheck_alcotest.to_alcotest prop_atpg_vectors_detect;
          QCheck_alcotest.to_alcotest prop_corrupted_elaboration_caught;
          QCheck_alcotest.to_alcotest prop_malformed_rtl_caught;
        ] );
    ]
