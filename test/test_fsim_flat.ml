(* Byte-identity of the flat struct-of-arrays fault-simulation kernel
   against the retained legacy list/Hashtbl engine
   (Fsim.run_comb_ref/run_seq_ref/eval_words_ref), on the core netlists of
   random SOCs, at 1/2/4 pool domains.  "Byte-identical" means the full
   detected-fault lists (order included), PO words and next-state words —
   not just coverage numbers. *)

open Socet_util
open Socet_netlist
module Fsim = Socet_atpg.Fsim
module Fault = Socet_atpg.Fault

let with_domains n f =
  Pool.set_size n;
  Fun.protect ~finally:(fun () -> Pool.set_size 1) f

let soc_netlists seed =
  let soc = Socet_cores.Gen.random_soc ~hetero:(seed mod 2 = 0) (Rng.create seed) in
  List.map (fun ci -> ci.Socet_core.Soc.ci_netlist) soc.Socet_core.Soc.insts

(* Enough vectors/faults to exercise multiple word batches (vectors > 62
   for run_comb) and multiple fault groups (faults are usually > 61 for
   run_seq on these cores). *)
let random_vectors rng nl count =
  List.init count (fun _ -> Rng.bitvec rng (Fsim.vector_length nl))

let random_inputs rng nl count =
  let npi = List.length (Netlist.pis nl) in
  List.init count (fun _ -> Rng.bitvec rng npi)

let fault_sig fs = List.map (fun (f : Fault.t) -> (f.f_net, f.f_stuck)) fs

let prop_run_comb_equiv =
  QCheck.Test.make ~name:"flat run_comb = legacy, 1/2/4 domains" ~count:6
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Rng.create (seed + 11) in
      List.for_all
        (fun nl ->
          let faults = Fault.collapse nl in
          let vectors = random_vectors rng nl 70 in
          let expect = fault_sig (Fsim.run_comb_ref nl ~vectors ~faults) in
          List.for_all
            (fun d ->
              with_domains d (fun () ->
                  fault_sig (Fsim.run_comb nl ~vectors ~faults) = expect))
            [ 1; 2; 4 ])
        (soc_netlists seed))

let prop_run_seq_equiv =
  QCheck.Test.make ~name:"flat run_seq = legacy, 1/2/4 domains" ~count:6
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Rng.create (seed + 23) in
      List.for_all
        (fun nl ->
          let faults = Fault.collapse nl in
          let inputs = random_inputs rng nl 12 in
          let expect = fault_sig (Fsim.run_seq_ref nl ~inputs ~faults) in
          List.for_all
            (fun d ->
              with_domains d (fun () ->
                  fault_sig (Fsim.run_seq nl ~inputs ~faults) = expect))
            [ 1; 2; 4 ])
        (soc_netlists seed))

let prop_eval_words_equiv =
  QCheck.Test.make ~name:"flat eval_words/po/next_state = legacy" ~count:10
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Rng.create (seed + 37) in
      let all_ones = (1 lsl Sim.word_width) - 1 in
      let word rng = Int64.to_int (Rng.int64 rng) land all_ones in
      List.for_all
        (fun nl ->
          let npi = List.length (Netlist.pis nl) in
          let nff = List.length (Netlist.dffs nl) in
          let pi = Array.init npi (fun _ -> word rng) in
          let state = Array.init nff (fun _ -> word rng) in
          (* Identity injection and a per-net stuck-at mask injection,
             matching the two ways Fsim drives the evaluator. *)
          let n = Netlist.gate_count nl in
          let or_mask = Array.init n (fun _ -> if Rng.int rng 50 = 0 then 1 else 0) in
          let injections =
            [ (fun _ x -> x); (fun g x -> x lor or_mask.(g)) ]
          in
          List.for_all
            (fun inject ->
              let flat = Sim.eval_words nl ~pi ~state ~inject in
              let leg = Fsim.eval_words_ref nl ~pi ~state ~inject in
              flat = leg
              && Sim.po_words nl flat = Fsim.po_words_ref nl leg
              && Sim.next_state_words nl flat = Fsim.next_state_words_ref nl leg)
            injections)
        (soc_netlists seed))

(* Sequential equivalence focused on state elements: faults on flip-flop
   outputs and in their D-fanin only surface through next-state capture
   and a later cycle's propagation, not the same cycle's PO diff.
   Inputs are held across cycles so the machines actually sequence
   through distinct states. *)
let prop_run_seq_dff_equiv =
  QCheck.Test.make ~name:"flat run_seq, DFF-cone faults = legacy, 1/2/4 domains"
    ~count:6
    QCheck.(int_bound 1_000_000)
    (fun seed ->
      let rng = Rng.create (seed + 53) in
      List.for_all
        (fun nl ->
          let dff_cone =
            List.concat_map
              (fun ff -> ff :: Array.to_list (Netlist.fanin nl ff))
              (Netlist.dffs nl)
          in
          let faults =
            List.filter
              (fun (f : Fault.t) -> List.mem f.f_net dff_cone)
              (Fault.collapse nl)
          in
          faults = []
          || begin
               let npi = List.length (Netlist.pis nl) in
               let inputs =
                 List.concat_map
                   (fun v -> [ v; v; v ])
                   (List.init 6 (fun _ -> Rng.bitvec rng npi))
               in
               let expect = fault_sig (Fsim.run_seq_ref nl ~inputs ~faults) in
               List.for_all
                 (fun d ->
                   with_domains d (fun () ->
                       fault_sig (Fsim.run_seq nl ~inputs ~faults) = expect))
                 [ 1; 2; 4 ]
             end)
        (soc_netlists seed))

let () =
  Alcotest.run "socet_fsim_flat"
    [
      ( "equivalence",
        [
          QCheck_alcotest.to_alcotest prop_run_comb_equiv;
          QCheck_alcotest.to_alcotest prop_run_seq_equiv;
          QCheck_alcotest.to_alcotest prop_run_seq_dff_equiv;
          QCheck_alcotest.to_alcotest prop_eval_words_equiv;
        ] );
    ]
