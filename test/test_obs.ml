(* Tests for the lib/obs observability subsystem: metric accumulation,
   span nesting, the JSON writer/parser pair, the Chrome trace export,
   and (as a qcheck property) the histogram quantile invariants. *)

open Socet_obs

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)
let check_str = Alcotest.(check string)

(* The parser returns results and the accessors options; tests want the
   happy path, so failures become test failures. *)
let parse s =
  match Json.of_string s with
  | Ok t -> t
  | Error e -> Alcotest.failf "JSON parse error: %s" e

let member k t =
  match Json.member k t with
  | Some v -> v
  | None -> Alcotest.failf "missing JSON member %S" k

let to_list t = Option.get (Json.to_list t)
let to_float t = Option.get (Json.to_float t)
let to_str t = Option.get (Json.to_str t)

(* Every test starts from a clean, enabled registry.  Metric handles are
   created inside the tests (the registry is global, so names are
   namespaced per test to stay independent of registration order). *)
let fresh ?(trace = false) () =
  Obs.configure ~trace ();
  Obs.reset ()

(* ------------------------------------------------------------------ *)
(* Counters, gauges, timers                                            *)
(* ------------------------------------------------------------------ *)

let test_counter_accumulation () =
  fresh ();
  let c = Obs.counter ~scope:"test" "counter.basic" in
  check_int "starts at zero" 0 (Obs.value c);
  Obs.incr c;
  Obs.incr c;
  Obs.add c 40;
  check_int "2 incr + add 40" 42 (Obs.value c);
  let again = Obs.counter ~scope:"test" "counter.basic" in
  Obs.incr again;
  check_int "same name is same cell" 43 (Obs.value c)

let test_counter_disabled_is_silent () =
  fresh ();
  let c = Obs.counter ~scope:"test" "counter.gated" in
  Obs.disable ();
  Obs.incr c;
  Obs.add c 10;
  check_int "no recording while disabled" 0 (Obs.value c);
  Obs.configure ();
  Obs.incr c;
  check_int "recording after re-enable" 1 (Obs.value c)

let test_gauge_max () =
  fresh ();
  let g = Obs.gauge ~scope:"test" "gauge.peak" in
  Obs.max_gauge g 5;
  Obs.max_gauge g 3;
  Obs.max_gauge g 9;
  Obs.max_gauge g 7;
  let v = List.assoc "test.gauge.peak" (Obs.snapshot_gauges ()) in
  check_int "max_gauge keeps the peak" 9 v

let test_timer_accumulation () =
  fresh ();
  let t = Obs.timer ~scope:"test" "timer.basic" in
  let r = Obs.time t (fun () -> 7 * 6) in
  check_int "thunk result returned" 42 r;
  ignore (Obs.time t (fun () -> Sys.opaque_identity (List.init 100 Fun.id)));
  let calls, total_us = List.assoc "test.timer.basic" (Obs.snapshot_timers ()) in
  check_int "two timed calls" 2 calls;
  check "non-negative total" true (total_us >= 0.0)

(* ------------------------------------------------------------------ *)
(* Spans                                                               *)
(* ------------------------------------------------------------------ *)

let test_span_nesting () =
  fresh ~trace:true ();
  let r =
    Obs.with_span ~cat:"test" "outer" @@ fun () ->
    Obs.with_span ~cat:"test" "inner" (fun () -> ());
    Obs.with_span ~cat:"test" "inner" (fun () -> ());
    17
  in
  check_int "with_span returns thunk result" 17 r;
  let events = Obs.span_events () in
  check_int "three completed spans" 3 (List.length events);
  let outer = List.find (fun e -> e.Sink.ev_name = "outer") events in
  let inners = List.filter (fun e -> e.Sink.ev_name = "inner") events in
  check_int "outer at depth 0" 0 outer.Sink.ev_depth;
  List.iter
    (fun e ->
      check_int "inner at depth 1" 1 e.Sink.ev_depth;
      check "inner within outer (start)" true
        (e.Sink.ev_start_us >= outer.Sink.ev_start_us);
      check "inner within outer (end)" true
        (e.Sink.ev_start_us +. e.Sink.ev_dur_us
        <= outer.Sink.ev_start_us +. outer.Sink.ev_dur_us +. 1.0))
    inners;
  (* Each completed span also feeds a registry timer named cat.name. *)
  let calls, _ = List.assoc "test.inner" (Obs.snapshot_timers ()) in
  check_int "span timer counts both inner calls" 2 calls

let test_span_survives_exception () =
  fresh ~trace:true ();
  (try
     Obs.with_span ~cat:"test" "raises" (fun () -> failwith "boom")
   with Failure _ -> ());
  let events = Obs.span_events () in
  check_int "span closed despite exception" 1 (List.length events);
  check_int "stack unwound" 0 (Span.depth ())

let test_span_disabled_is_free () =
  fresh ();
  Obs.disable ();
  let r = Obs.with_span "off" (fun () -> 5) in
  check_int "disabled with_span is the thunk" 5 r;
  check_int "no events recorded" 0 (List.length (Obs.span_events ()))

(* ------------------------------------------------------------------ *)
(* JSON writer / parser                                                *)
(* ------------------------------------------------------------------ *)

let test_json_roundtrip () =
  let doc =
    Json.Obj
      [
        ("s", Json.Str "a \"quoted\" \\ line\nnext");
        ("n", Json.Num 42.0);
        ("f", Json.Num 1.5);
        ("b", Json.Bool true);
        ("z", Json.Null);
        ("a", Json.Arr [ Json.Num 1.0; Json.Str "x"; Json.Arr [] ]);
        ("o", Json.Obj [ ("k", Json.Bool false) ]);
      ]
  in
  let parsed = parse (Json.to_string doc) in
  check "compact roundtrip" true (parsed = doc);
  let parsed = parse (Json.to_string ~pretty:true doc) in
  check "pretty roundtrip" true (parsed = doc);
  check_str "integer floats print as integers" "42"
    (Json.to_string (Json.Num 42.0))

let test_json_parser_rejects_garbage () =
  List.iter
    (fun s ->
      check ("rejects " ^ s) true
        (match Json.of_string s with Error _ -> true | Ok _ -> false))
    [ ""; "{"; "[1,"; "{\"a\":}"; "truex"; "1 2"; "\"unterminated" ]

(* ------------------------------------------------------------------ *)
(* Exporters                                                           *)
(* ------------------------------------------------------------------ *)

let test_trace_json_well_formed () =
  fresh ~trace:true ();
  Obs.with_span ~cat:"enginea" "phase.one" (fun () ->
      Obs.with_span ~cat:"enginea" "phase.two" (fun () -> ()));
  Obs.with_span ~cat:"engineb" "other.phase" (fun () -> ());
  let doc = parse (Obs.trace_json ()) in
  let events = to_list (member "traceEvents" doc) in
  check_int "one event per span" 3 (List.length events);
  List.iter
    (fun e ->
      check_str "complete events" "X" (to_str (member "ph" e));
      check "has a name" true (to_str (member "name" e) <> "");
      check "non-negative ts" true (to_float (member "ts" e) >= 0.0);
      check "non-negative dur" true (to_float (member "dur" e) >= 0.0))
    events;
  let cats =
    List.sort_uniq compare
      (List.map (fun e -> to_str (member "cat" e)) events)
  in
  check "both categories exported" true (cats = [ "enginea"; "engineb" ])

let test_stats_json_well_formed () =
  fresh ();
  let c = Obs.counter ~scope:"test" "stats.count" in
  let h = Obs.histogram ~scope:"test" "stats.hist" in
  Obs.add c 3;
  List.iter (Obs.observe h) [ 1.0; 2.0; 3.0 ];
  let doc = parse (Obs.stats_json ()) in
  let counters = member "counters" doc in
  check "counter exported" true
    (to_float (member "test.stats.count" counters) = 3.0);
  let hist = member "test.stats.hist" (member "histograms" doc) in
  check "histogram count exported" true (to_float (member "count" hist) = 3.0)

let test_file_sink_streams_jsonl () =
  let path = Filename.temp_file "socet-obs" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Obs.configure ~stream:path ();
      Obs.reset ();
      Obs.with_span ~cat:"enginea" "stream.one" (fun () ->
          Obs.with_span ~cat:"enginea" "stream.two" (fun () -> ()));
      Obs.with_span ~cat:"engineb" "stream.three" (fun () -> ());
      check_int "streaming sink retains nothing in memory" 0
        (List.length (Obs.span_events ()));
      Obs.flush ();
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      let lines = List.rev !lines in
      check_int "one JSONL line per span" 3 (List.length lines);
      List.iter
        (fun line ->
          let e = parse line in
          check "has a name" true (to_str (member "name" e) <> "");
          check "has a category" true (to_str (member "cat" e) <> "");
          check "non-negative duration" true (to_float (member "dur_us" e) >= 0.0))
        lines;
      (* Appending across a reconfigure keeps the file valid JSONL. *)
      Obs.configure ~stream:path ();
      Obs.with_span ~cat:"enginea" "stream.four" (fun () -> ());
      Obs.flush ();
      let ic = open_in path in
      let n = ref 0 in
      (try
         while true do
           ignore (parse (input_line ic));
           incr n
         done
       with End_of_file -> close_in ic);
      check_int "appended line parses too" 4 !n);
  fresh ()

let test_stats_table_renders () =
  fresh ();
  let c = Obs.counter ~scope:"test" "table.count" in
  Obs.incr c;
  let s = Obs.stats_table () in
  let contains ~sub s =
    let n = String.length sub and m = String.length s in
    let rec go i = i + n <= m && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  check "table mentions the metric" true (contains ~sub:"test.table.count" s)

(* ------------------------------------------------------------------ *)
(* Histogram quantile properties                                        *)
(* ------------------------------------------------------------------ *)

let prop_quantiles_monotone_and_bounded =
  QCheck.Test.make ~name:"histogram quantiles monotone, bounded by min/max"
    ~count:200
    QCheck.(list_of_size Gen.(1 -- 200) (float_bound_inclusive 1e9))
    (fun samples ->
      let h = Histogram.create () in
      List.iter (Histogram.observe h) samples;
      let lo = List.fold_left min infinity samples in
      let hi = List.fold_left max neg_infinity samples in
      let qs = [ 0.0; 0.1; 0.25; 0.5; 0.75; 0.9; 0.99; 1.0 ] in
      let vs = List.map (Histogram.quantile h) qs in
      let rec monotone = function
        | a :: (b :: _ as rest) -> a <= b && monotone rest
        | _ -> true
      in
      monotone vs
      && List.for_all (fun v -> v >= lo && v <= hi) vs)

let prop_histogram_count_sum_exact =
  QCheck.Test.make ~name:"histogram count/sum/min/max are exact" ~count:200
    QCheck.(list_of_size Gen.(1 -- 100) (float_bound_inclusive 1e6))
    (fun samples ->
      let h = Histogram.create () in
      List.iter (Histogram.observe h) samples;
      let s = Histogram.summarize h in
      s.Histogram.s_count = List.length samples
      && abs_float (s.Histogram.s_sum -. List.fold_left ( +. ) 0.0 samples)
         <= 1e-6 *. (1.0 +. abs_float s.Histogram.s_sum)
      && s.Histogram.s_min = List.fold_left min infinity samples
      && s.Histogram.s_max = List.fold_left max neg_infinity samples)

(* ------------------------------------------------------------------ *)

let () =
  Alcotest.run "socet_obs"
    [
      ( "metrics",
        [
          Alcotest.test_case "counter accumulation" `Quick
            test_counter_accumulation;
          Alcotest.test_case "disabled is silent" `Quick
            test_counter_disabled_is_silent;
          Alcotest.test_case "gauge peak" `Quick test_gauge_max;
          Alcotest.test_case "timer accumulation" `Quick
            test_timer_accumulation;
        ] );
      ( "spans",
        [
          Alcotest.test_case "nesting and depths" `Quick test_span_nesting;
          Alcotest.test_case "exception safety" `Quick
            test_span_survives_exception;
          Alcotest.test_case "disabled is free" `Quick
            test_span_disabled_is_free;
        ] );
      ( "json",
        [
          Alcotest.test_case "roundtrip" `Quick test_json_roundtrip;
          Alcotest.test_case "rejects garbage" `Quick
            test_json_parser_rejects_garbage;
        ] );
      ( "export",
        [
          Alcotest.test_case "trace json" `Quick test_trace_json_well_formed;
          Alcotest.test_case "stats json" `Quick test_stats_json_well_formed;
          Alcotest.test_case "stats table" `Quick test_stats_table_renders;
          Alcotest.test_case "file sink streams jsonl" `Quick
            test_file_sink_streams_jsonl;
        ] );
      ( "histogram",
        [
          QCheck_alcotest.to_alcotest prop_quantiles_monotone_and_bounded;
          QCheck_alcotest.to_alcotest prop_histogram_count_sum_exact;
        ] );
    ]
