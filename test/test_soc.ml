open Socet_core
open Socet_cores

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* A shared System 1 (ATPG runs lazily, once). *)
let soc1 = lazy (Systems.system1 ())
let soc2 = lazy (Systems.system2 ())

let all_v1 soc = List.map (fun ci -> (ci.Soc.ci_name, 1)) soc.Soc.insts

(* ------------------------------------------------------------------ *)
(* Soc construction and validation                                     *)
(* ------------------------------------------------------------------ *)

let test_soc_validation_catches_undriven () =
  let cpu = Soc.instantiate "CPU" (Cpu.core ()) in
  check "undriven input rejected" true
    (try
       ignore
         (Soc.make ~name:"bad" ~pis:[ ("X", 8) ] ~pos:[] ~cores:[ cpu ]
            ~connections:[] ());
       false
     with Socet_util.Error.Socet_error _ -> true)

let test_soc_validation_width_mismatch () =
  let cpu = Soc.instantiate "CPU" (Cpu.core ()) in
  check "width mismatch rejected" true
    (try
       ignore
         (Soc.make ~name:"bad" ~pis:[ ("X", 4) ] ~pos:[]
            ~cores:[ cpu ]
            ~connections:[ { Soc.c_from = Soc.Pi "X"; c_to = Soc.Cport ("CPU", "Data") } ]
            ());
       false
     with Socet_util.Error.Socet_error _ -> true)

let test_soc_system1_shape () =
  let soc = Lazy.force soc1 in
  check_int "three cores" 3 (List.length soc.Soc.insts);
  check_int "two memories" 2 (List.length soc.Soc.memories);
  check "original area plausible" true (Soc.original_area soc > 3000);
  check "hscan overhead positive" true (Soc.hscan_area_overhead soc > 0);
  check "driver of CPU.Data is PREP.DB" true
    (Soc.driver_of soc "CPU" "Data" = Some (Soc.Cport ("PREP", "DB")))

let test_version_of_clamps () =
  let soc = Lazy.force soc1 in
  let cpu = Soc.inst soc "CPU" in
  check_int "version 1" 1 (Soc.version_of cpu 1).Version.v_index;
  check_int "version 99 clamps to top" 3 (Soc.version_of cpu 99).Version.v_index;
  check_int "version 0 clamps to bottom" 1 (Soc.version_of cpu 0).Version.v_index

(* ------------------------------------------------------------------ *)
(* CCG                                                                 *)
(* ------------------------------------------------------------------ *)

let test_ccg_structure () =
  let soc = Lazy.force soc1 in
  let ccg = Ccg.build soc ~choice:(all_v1 soc) in
  (* Nodes: 2 PIs + 7 POs + core ports. *)
  check "has PI node" true (Ccg.node_id ccg (Ccg.N_pi "NUM") >= 0);
  check "has DISPLAY input node" true (Ccg.node_id ccg (Ccg.N_cin ("DISPLAY", "D")) >= 0);
  (* The Fig. 9 edges exist: NUM -> DB inside PREP, Data -> Address inside
     the CPU, wires across. *)
  let g = ccg.Ccg.graph in
  let has_transp src dst =
    List.exists
      (fun (e : Ccg.cedge Socet_graph.Digraph.edge) ->
        match e.label with Ccg.Transp _ -> e.dst = dst | _ -> false)
      (Socet_graph.Digraph.succ g src)
  in
  check "PREP NUM -> DB transparency edge" true
    (has_transp
       (Ccg.node_id ccg (Ccg.N_cin ("PREP", "NUM")))
       (Ccg.node_id ccg (Ccg.N_cout ("PREP", "DB"))));
  check "CPU Data -> Address_lo transparency edge" true
    (has_transp
       (Ccg.node_id ccg (Ccg.N_cin ("CPU", "Data")))
       (Ccg.node_id ccg (Ccg.N_cout ("CPU", "Address_lo"))));
  check "wire DB -> CPU.Data" true
    (Socet_graph.Digraph.find_edge g
       ~src:(Ccg.node_id ccg (Ccg.N_cout ("PREP", "DB")))
       ~dst:(Ccg.node_id ccg (Ccg.N_cin ("CPU", "Data")))
    <> None)

let test_smux_cost () =
  check_int "3w+1" 13 (Ccg.smux_cost ~width:4);
  check_int "1-bit" 4 (Ccg.smux_cost ~width:1)

(* ------------------------------------------------------------------ *)
(* Access: the Sec. 3 worked example                                   *)
(* ------------------------------------------------------------------ *)

(* Per-vector cycles for testing the DISPLAY with PREP at version 2 and
   the CPU at version k: the paper's 9 / 4 / 3 ladder. *)
let display_period cpu_version =
  let soc = Lazy.force soc1 in
  let sched =
    Schedule.build soc
      ~choice:[ ("PREP", 2); ("CPU", cpu_version); ("DISPLAY", 1) ]
      ()
  in
  let t = List.find (fun t -> t.Schedule.ct_inst = "DISPLAY") sched.Schedule.s_tests in
  t.Schedule.ct_period

let test_worked_example_v1 () =
  check_int "CPU V1: 9 cycles per vector (paper Sec. 3)" 9 (display_period 1)

let test_worked_example_v2 () =
  check_int "CPU V2: 4 cycles per vector (paper: 525x4+3)" 4 (display_period 2)

let test_worked_example_v3 () =
  check_int "CPU V3: 3 cycles per vector (paper: 525x3+3)" 3 (display_period 3)

let test_worked_example_tat_formula () =
  let soc = Lazy.force soc1 in
  let sched =
    Schedule.build soc ~choice:[ ("PREP", 2); ("CPU", 3); ("DISPLAY", 1) ] ()
  in
  let t = List.find (fun t -> t.Schedule.ct_inst = "DISPLAY") sched.Schedule.s_tests in
  check_int "TAT = vectors x period + tail"
    ((t.Schedule.ct_vectors * t.Schedule.ct_period) + t.Schedule.ct_tail)
    t.Schedule.ct_time;
  (* Tail = remaining scan-out of the last response (depth - 1, DISPLAY
     outputs are chip POs so observation is free). *)
  let disp = Soc.inst soc "DISPLAY" in
  check_int "tail is depth - 1"
    (disp.Soc.ci_hscan.Socet_scan.Hscan.depth - 1)
    t.Schedule.ct_tail

let test_reservation_serializes_shared_edges () =
  (* With everything at version 1, justifying DISPLAY's three inputs
     reuses PREP's NUM -> DB edge (5 cycles each use): the bookings force
     distinct time slots, so the period exceeds one bare path latency. *)
  let soc = Lazy.force soc1 in
  let sched = Schedule.build soc ~choice:(all_v1 soc) () in
  let t = List.find (fun t -> t.Schedule.ct_inst = "DISPLAY") sched.Schedule.s_tests in
  (* Bare path: 5 (PREP) + 8 (CPU serial) = 13; D's extra slot pushes it
     beyond 13. *)
  check "period at least 13" true (t.Schedule.ct_period >= 13)

let test_unobservable_output_gets_smux () =
  (* PREP.Address and CPU.Read/Write face the (excluded) RAM: the router
     must fall back to system-level muxes, as the paper does in Fig. 9. *)
  let soc = Lazy.force soc1 in
  let sched = Schedule.build soc ~choice:(all_v1 soc) () in
  check "smux cost charged" true (sched.Schedule.s_smux_cost > 0);
  let prep_test =
    List.find (fun t -> t.Schedule.ct_inst = "PREP") sched.Schedule.s_tests
  in
  let smuxed =
    List.filter (fun r -> r.Access.r_added_smux <> None) prep_test.Schedule.ct_observe
  in
  check "PREP has an smuxed output" true (smuxed <> [])

let test_usage_counts_populated () =
  let soc = Lazy.force soc1 in
  let sched = Schedule.build soc ~choice:(all_v1 soc) () in
  check "usage table non-empty" true (Hashtbl.length sched.Schedule.s_usage > 0);
  (* NUM -> DB is used by several tests (paper counts 3 uses). *)
  let prep = Soc.inst soc "PREP" in
  let rcg = prep.Soc.ci_rcg in
  let key =
    ("PREP", Socet_rtl.Rcg.node_id rcg "NUM", Socet_rtl.Rcg.node_id rcg "DB")
  in
  match Hashtbl.find_opt sched.Schedule.s_usage key with
  | Some n -> check "NUM->DB used several times" true (n >= 3)
  | None -> Alcotest.fail "NUM->DB unused?"

(* ------------------------------------------------------------------ *)
(* Select                                                              *)
(* ------------------------------------------------------------------ *)

let test_design_space_size_and_extremes () =
  let soc = Lazy.force soc1 in
  let points = Select.design_space soc in
  check_int "27 design points (3 versions each)" 27 (List.length points);
  let min_area = List.fold_left (fun a p -> min a p.Select.pt_area) max_int points in
  let min_time = List.fold_left (fun a p -> min a p.Select.pt_time) max_int points in
  let max_time = List.fold_left (fun a p -> max a p.Select.pt_time) 0 points in
  (* The all-V1 point has the least area; the TAT spread is the paper's
     several-fold reduction. *)
  let p1 = List.hd points in
  check_int "first point is all-V1 and min area" min_area p1.Select.pt_area;
  check "TAT spread at least 3x" true (max_time >= 3 * min_time)

let test_delta_tat_positive_for_used_cores () =
  let soc = Lazy.force soc1 in
  let p = Select.evaluate soc ~choice:(all_v1 soc) () in
  (match Select.delta_tat soc p "PREP" with
  | Some (_, dtat, da) ->
      check "PREP dTAT positive" true (dtat > 0);
      check "PREP dA positive" true (da > 0)
  | None -> Alcotest.fail "PREP has a next version");
  (* A core already at the top rung has no move. *)
  let top = List.map (fun ci -> (ci.Soc.ci_name, 3)) soc.Soc.insts in
  let p3 = Select.evaluate soc ~choice:top () in
  check "no move at top" true (Select.delta_tat soc p3 "PREP" = None)

let test_minimize_time_trajectory () =
  let soc = Lazy.force soc1 in
  let traj = Select.minimize_time soc ~max_area:500 in
  check "at least two steps" true (List.length traj >= 2);
  let first = List.hd traj in
  let last = List.nth traj (List.length traj - 1) in
  check "time improves overall" true (last.Select.pt_time < first.Select.pt_time);
  List.iter (fun p -> check "area cap respected" true (p.Select.pt_area <= 500)) traj

let test_minimize_area_meets_bound () =
  let soc = Lazy.force soc1 in
  let traj = Select.minimize_area soc ~max_time:5000 in
  let last = List.nth traj (List.length traj - 1) in
  check "bound met" true (last.Select.pt_time <= 5000);
  (* The trajectory should not have bought the most expensive point. *)
  let all3 = List.map (fun ci -> (ci.Soc.ci_name, 3)) soc.Soc.insts in
  let top = Select.evaluate soc ~choice:all3 () in
  check "cheaper than max-version point" true (last.Select.pt_area <= top.Select.pt_area)

(* ------------------------------------------------------------------ *)
(* Chip composition and coverage                                        *)
(* ------------------------------------------------------------------ *)

let test_chip_compose_structure () =
  let soc = Lazy.force soc1 in
  let chip = Chip.compose soc () in
  let open Socet_netlist in
  check_int "chip PIs = PI bits" 9 (List.length (Netlist.pis chip));
  check_int "chip POs = PO bits" 47 (List.length (Netlist.pos chip));
  check "gate count ~ sum of cores" true
    (Netlist.gate_count chip
    > List.fold_left
        (fun acc ci -> acc + Netlist.gate_count ci.Soc.ci_netlist)
        0 soc.Soc.insts);
  check_int "comb order total" (Netlist.gate_count chip)
    (Array.length (Netlist.comb_order chip))

let test_chip_compose_scan_variant () =
  let soc = Lazy.force soc1 in
  let plain = Chip.compose soc () in
  let scanned = Chip.compose soc ~with_core_scan:true () in
  let open Socet_netlist in
  check "scan variant bigger" true (Netlist.area scanned > Netlist.area plain);
  check "test_se pin present" true
    (try
       ignore (Netlist.find_pi scanned "test_se");
       true
     with Not_found -> false)

let test_coverage_ordering () =
  let soc = Lazy.force soc1 in
  let orig = Testgen.sequential_coverage soc ~cycles:128 () in
  let full = Testgen.scan_access_coverage soc in
  check "orig far below full scan access" true (orig.Testgen.fc +. 20.0 < full.Testgen.fc);
  check "full access high" true (full.Testgen.fc > 90.0);
  check "teff at least fc" true (full.Testgen.teff >= full.Testgen.fc)

let test_baseline_dominated () =
  (* The headline claim: SOCET needs far less chip-level overhead and TAT
     than FSCAN-BSCAN. *)
  let soc = Lazy.force soc1 in
  let b = Baseline.evaluate soc in
  let sched = Schedule.build soc ~choice:(all_v1 soc) () in
  check "TAT advantage" true (sched.Schedule.s_total_time < b.Baseline.b_time);
  check "area advantage" true
    (Soc.hscan_area_overhead soc + sched.Schedule.s_area_overhead
    < b.Baseline.b_total_overhead)

let test_system2_end_to_end () =
  let soc = Lazy.force soc2 in
  let sched = Schedule.build soc ~choice:(all_v1 soc) () in
  check "schedule nonempty" true (sched.Schedule.s_tests <> []);
  check "total time positive" true (sched.Schedule.s_total_time > 0);
  let b = Baseline.evaluate soc in
  check "S2 TAT advantage" true (sched.Schedule.s_total_time < b.Baseline.b_time);
  let cov = Testgen.scan_access_coverage soc in
  check "S2 coverage high" true (cov.Testgen.fc > 90.0)


(* ------------------------------------------------------------------ *)
(* Test-bus baseline and overlapped scheduling                          *)
(* ------------------------------------------------------------------ *)

let test_test_bus_baseline () =
  let soc = Lazy.force soc1 in
  let bus = Baseline.test_bus soc in
  let fb = Baseline.evaluate soc in
  check "bus pays muxes on every port" true (bus.Baseline.tb_mux_overhead > 0);
  check "bus includes full scan" true
    (bus.Baseline.tb_scan_overhead = fb.Baseline.b_core_scan_overhead);
  check "bus time positive" true (bus.Baseline.tb_time > 0);
  (* SOCET still beats the bus on chip-level hardware. *)
  let sched = Schedule.build soc ~choice:(all_v1 soc) () in
  check "SOCET cheaper than bus muxes" true
    (sched.Schedule.s_area_overhead < bus.Baseline.tb_mux_overhead)

let test_involved_cores () =
  let soc = Lazy.force soc1 in
  let sched = Schedule.build soc ~choice:(all_v1 soc) () in
  let disp =
    List.find (fun t -> t.Schedule.ct_inst = "DISPLAY") sched.Schedule.s_tests
  in
  let involved = Schedule.involved_cores disp in
  (* Testing the DISPLAY rides through the PREPROCESSOR and the CPU. *)
  check "CUT included" true (List.mem "DISPLAY" involved);
  check "PREP conduit" true (List.mem "PREP" involved);
  check "CPU conduit" true (List.mem "CPU" involved)

let test_parallel_schedule_system1_serializes () =
  (* System 1 is one long chain: every test involves the PREPROCESSOR, so
     overlapping buys nothing. *)
  let soc = Lazy.force soc1 in
  let sched = Schedule.build soc ~choice:(all_v1 soc) () in
  let makespan, starts = Schedule.parallel_makespan sched in
  check_int "chain topology cannot overlap" sched.Schedule.s_total_time makespan;
  check_int "every test placed" (List.length sched.Schedule.s_tests)
    (List.length starts)

let test_parallel_schedule_system3_overlaps () =
  (* System 3's three subsystems are independent: the makespan must drop
     below the sequential sum. *)
  let soc = Socet_cores.Systems.system3 () in
  let sched =
    Schedule.build soc ~choice:(List.map (fun ci -> (ci.Soc.ci_name, 1)) soc.Soc.insts) ()
  in
  let makespan, starts = Schedule.parallel_makespan sched in
  check "overlap shortens the session" true (makespan < sched.Schedule.s_total_time);
  (* At least two tests start at cycle 0. *)
  check "concurrent starts" true
    (List.length (List.filter (fun (_, s) -> s = 0) starts) >= 2);
  (* Overlap never loses correctness headroom: makespan at least the
     longest single test. *)
  let longest =
    List.fold_left (fun acc t -> max acc t.Schedule.ct_time) 0 sched.Schedule.s_tests
  in
  check "makespan bounds" true (makespan >= longest)

let bus_parallel_tests =
  [
    Alcotest.test_case "test-bus baseline" `Quick test_test_bus_baseline;
    Alcotest.test_case "involved cores" `Quick test_involved_cores;
    Alcotest.test_case "system1 serializes" `Quick test_parallel_schedule_system1_serializes;
    Alcotest.test_case "system3 overlaps" `Quick test_parallel_schedule_system3_overlaps;
  ]


(* ------------------------------------------------------------------ *)
(* DOT export                                                          *)
(* ------------------------------------------------------------------ *)

let contains hay needle =
  let nh = String.length hay and nn = String.length needle in
  let rec loop i = i + nn <= nh && (String.sub hay i nn = needle || loop (i + 1)) in
  loop 0

let test_rcg_dot () =
  let soc = Lazy.force soc1 in
  let cpu = Soc.inst soc "CPU" in
  let dot = Export.rcg_dot cpu.Soc.ci_rcg in
  check "digraph header" true (contains dot "digraph \"CPU\"");
  check "register node present" true (contains dot "MAR_off");
  check "hscan edge styled" true (contains dot "penwidth=2");
  check "split annotation" true (contains dot "AC[8] C")

let test_ccg_dot () =
  let soc = Lazy.force soc1 in
  let ccg = Ccg.build soc ~choice:(all_v1 soc) in
  let dot = Export.ccg_dot ccg in
  check "digraph header" true (contains dot "digraph \"System1\"");
  check "PI node" true (contains dot "PI NUM");
  check "latency label" true (contains dot "label=\"5\"")

let export_tests =
  [
    Alcotest.test_case "rcg dot" `Quick test_rcg_dot;
    Alcotest.test_case "ccg dot" `Quick test_ccg_dot;
  ]


(* ------------------------------------------------------------------ *)
(* Controller and explicit smux requests                               *)
(* ------------------------------------------------------------------ *)

let test_controller_cost_grows_with_versions () =
  let soc = Lazy.force soc1 in
  let base = Controller.cost soc ~choice:(all_v1 soc) ~n_smux:0 in
  let rich =
    Controller.cost soc
      ~choice:(List.map (fun ci -> (ci.Soc.ci_name, 3)) soc.Soc.insts)
      ~n_smux:0
  in
  check "higher versions need more control signals" true (rich >= base);
  check "muxes add signals" true
    (Controller.cost soc ~choice:(all_v1 soc) ~n_smux:3 > base);
  check_int "signal arithmetic"
    (Controller.base_cost
    + Controller.per_signal_cost * Controller.signal_count soc ~choice:(all_v1 soc) ~n_smux:0)
    base

let test_schedule_explicit_smux_request () =
  let soc = Lazy.force soc1 in
  let plain = Schedule.build soc ~choice:(all_v1 soc) () in
  let with_mux =
    Schedule.build soc ~choice:(all_v1 soc)
      ~smuxes:[ { Schedule.sm_inst = "DISPLAY"; sm_port = "A_lo"; sm_dir = `In } ]
      ()
  in
  (* The requested mux is paid for and shortens the DISPLAY test. *)
  check "mux cost charged" true
    (with_mux.Schedule.s_smux_cost > plain.Schedule.s_smux_cost);
  let period s =
    (List.find (fun t -> t.Schedule.ct_inst = "DISPLAY") s.Schedule.s_tests)
      .Schedule.ct_period
  in
  check "display justification faster" true (period with_mux < period plain)

let test_version_total_latency () =
  let soc = Lazy.force soc1 in
  let cpu = Soc.inst soc "CPU" in
  let v1 = Soc.version_of cpu 1 and v3 = Soc.version_of cpu 3 in
  check "total latency shrinks along the ladder" true
    (Version.total_latency v3 < Version.total_latency v1);
  (* V1: A_lo 6 + A_hi 2 + Read 2 + Write 2 = 12. *)
  check_int "V1 sum over outputs" 12 (Version.total_latency v1)

let controller_tests =
  [
    Alcotest.test_case "controller cost" `Quick test_controller_cost_grows_with_versions;
    Alcotest.test_case "explicit smux request" `Quick test_schedule_explicit_smux_request;
    Alcotest.test_case "version total latency" `Quick test_version_total_latency;
  ]

let () =
  Alcotest.run "socet_soc"
    [
      ( "soc",
        [
          Alcotest.test_case "undriven input" `Quick test_soc_validation_catches_undriven;
          Alcotest.test_case "width mismatch" `Quick test_soc_validation_width_mismatch;
          Alcotest.test_case "system1 shape" `Quick test_soc_system1_shape;
          Alcotest.test_case "version clamping" `Quick test_version_of_clamps;
        ] );
      ( "ccg",
        [
          Alcotest.test_case "structure" `Quick test_ccg_structure;
          Alcotest.test_case "smux cost" `Quick test_smux_cost;
        ] );
      ( "worked-example",
        [
          Alcotest.test_case "CPU V1: 9 cycles" `Quick test_worked_example_v1;
          Alcotest.test_case "CPU V2: 4 cycles" `Quick test_worked_example_v2;
          Alcotest.test_case "CPU V3: 3 cycles" `Quick test_worked_example_v3;
          Alcotest.test_case "TAT formula" `Quick test_worked_example_tat_formula;
          Alcotest.test_case "reservations serialize" `Quick
            test_reservation_serializes_shared_edges;
          Alcotest.test_case "smux fallback" `Quick test_unobservable_output_gets_smux;
          Alcotest.test_case "usage counts" `Quick test_usage_counts_populated;
        ] );
      ( "select",
        [
          Alcotest.test_case "design space" `Quick test_design_space_size_and_extremes;
          Alcotest.test_case "delta TAT" `Quick test_delta_tat_positive_for_used_cores;
          Alcotest.test_case "minimize time" `Quick test_minimize_time_trajectory;
          Alcotest.test_case "minimize area" `Quick test_minimize_area_meets_bound;
        ] );
      ("extensions", bus_parallel_tests);
      ("export", export_tests);
      ("controller", controller_tests);
      ( "chip",
        [
          Alcotest.test_case "compose" `Quick test_chip_compose_structure;
          Alcotest.test_case "compose with scan" `Quick test_chip_compose_scan_variant;
          Alcotest.test_case "coverage ordering" `Quick test_coverage_ordering;
          Alcotest.test_case "baseline dominated" `Quick test_baseline_dominated;
          Alcotest.test_case "system 2 end to end" `Quick test_system2_end_to_end;
        ] );
    ]
