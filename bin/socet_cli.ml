(* The socet command-line tool: inspect cores, explore SOC design points,
   and evaluate testability — the user-facing face of the library.

     dune exec bin/socet_cli.exe -- --help
*)

open Cmdliner
open Socet_rtl
open Socet_core
module Obs = Socet_obs.Obs
module Err = Socet_util.Error
module Proto = Socet_serve.Proto
module Dispatch = Socet_serve.Dispatch

(* Documented exit codes (full table in README): engine failures surface
   as structured errors mapped to distinct codes, never as raw exceptions
   through main. *)
let exit_invalid = 3
let exit_exhausted = 4
let exit_overloaded = 5
let exit_internal = 1

let exits =
  Cmd.Exit.info exit_invalid
    ~doc:
      "on invalid input: an unknown core or system, a malformed request, \
       or a netlist that fails load-time validation."
  :: Cmd.Exit.info exit_exhausted
       ~doc:
         "on search-budget or deadline exhaustion, or a degraded result \
          under $(b,--strict)."
  :: Cmd.Exit.info exit_overloaded
       ~doc:
         "when the server rejects a request because its job queue is full \
          or draining; retriable after the suggested backoff."
  :: Cmd.Exit.defaults

(* ------------------------------------------------------------------ *)
(* Common plumbing: --stats / --trace / --jobs on every subcommand     *)
(* ------------------------------------------------------------------ *)

type obs_opts = { oo_stats : bool; oo_trace : string option; oo_jobs : int option }

let obs_opts_t =
  let stats =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:
            "Print the engines' observability report (counters, span \
             timers, histograms) after the command finishes.")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Record engine spans.  A $(docv) ending in .jsonl streams \
             events to disk as they complete (bounded memory, suitable \
             for long runs and servers); any other name buffers spans \
             and writes Chrome trace-event JSON on exit (load it in \
             chrome://tracing or https://ui.perfetto.dev).")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "jobs"; "j" ] ~docv:"N" ~env:(Cmd.Env.info "SOCET_DOMAINS")
          ~doc:
            "Number of domains for the parallel engines (fault \
             simulation, design-space search).  $(docv)=1 runs \
             sequentially; the default is the machine's recommended \
             domain count.  Results are identical at any setting.")
  in
  Term.(
    const (fun oo_stats oo_trace oo_jobs -> { oo_stats; oo_trace; oo_jobs })
    $ stats $ trace $ jobs)

let streaming_trace opts =
  match opts.oo_trace with
  | Some file when Filename.check_suffix file ".jsonl" -> Some file
  | _ -> None

let with_obs opts run =
  Option.iter Socet_util.Pool.set_size opts.oo_jobs;
  if opts.oo_stats || opts.oo_trace <> None then
    Obs.configure
      ~trace:(opts.oo_trace <> None)
      ?stream:(streaming_trace opts) ();
  let code =
    try run () with
    | Err.Socet_error e ->
        prerr_endline (Err.to_string e);
        Err.exit_code e
    | Socet_util.Budget.Exhausted_exn label ->
        Printf.eprintf "socet: budget %s exhausted\n" label;
        exit_exhausted
    | Stack_overflow | Out_of_memory | Sys.Break as e -> raise e
    | e ->
        (* Last line of defence behind Error.guard: an escaping exception
           is still a documented internal-error exit, not an OCaml
           backtrace with an unspecified status. *)
        Printf.eprintf "socet: internal error: %s\n" (Printexc.to_string e);
        exit_internal
  in
  if opts.oo_stats then print_string (Obs.stats_table ());
  match (opts.oo_trace, streaming_trace opts) with
  | None, _ -> code
  | Some _, Some _ ->
      (* Events already on disk; just push out the tail of the buffer. *)
      Obs.flush ();
      code
  | Some file, None -> (
      try
        Obs.write_trace file;
        Printf.eprintf "wrote %d spans to %s\n"
          (List.length (Obs.span_events ()))
          file;
        code
      with Sys_error e ->
        Printf.eprintf "socet: cannot write trace: %s\n" e;
        1)

(* Shared input resolution lives in Socet_serve.Dispatch so the server
   resolves names identically; [or_die] funnels the structured error into
   [with_obs]'s handler (exit code 3). *)
let or_die = function Ok v -> v | Error e -> raise (Err.Socet_error e)

let builtin_cores = Dispatch.builtin_cores
let core_of_name name = or_die (Dispatch.core_of_name name)
let system_of_name name = or_die (Dispatch.system_of_name name)

(* --cache DIR: the persistent result store (DESIGN.md §16).  Validated
   up front — create-if-missing, not-a-directory and unwritable paths
   are structured Validation errors, exit code 3 through [with_obs]. *)
module Cache = Socet_cache.Cache

let cache_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "cache" ] ~docv:"DIR"
        ~doc:
          "Persist expensive results (ATPG vector sets, access routes, \
           TAM schedules) in a content-addressed store under $(docv), \
           created if missing.  Cached results are byte-identical to \
           recomputation; the store is bounded \
           ($(b,SOCET_CACHE_LIMIT_MB), default 256) and LRU-evicted, \
           and a corrupt entry reads as a miss, never a failure.")

let activate_cache cache =
  Option.iter (fun dir -> or_die (Cache.activate_dir dir)) cache

(* explore/chip/atpg run through the same Dispatch entry the server uses,
   so `socet submit` output is byte-identical to the direct command. *)
let run_request opts req =
  with_obs opts @@ fun () ->
  match Dispatch.run req with
  | Ok o ->
      print_string o.Dispatch.o_stdout;
      prerr_string o.Dispatch.o_stderr;
      o.Dispatch.o_code
  | Error e -> raise (Err.Socet_error e)

(* ------------------------------------------------------------------ *)
(* socet cores                                                         *)
(* ------------------------------------------------------------------ *)

let cmd_cores opts () =
  with_obs opts @@ fun () ->
  let rows =
    List.map
      (fun (key, core) ->
        let nl = Socet_synth.Elaborate.core_to_netlist core in
        let rcg = Rcg.of_core core in
        let hscan = Socet_scan.Hscan.insert rcg in
        [
          key;
          string_of_int (Socet_netlist.Netlist.area nl);
          string_of_int (List.length (Socet_netlist.Netlist.dffs nl));
          string_of_int (Rtl_core.input_bit_count core);
          string_of_int (Rtl_core.output_bit_count core);
          string_of_int hscan.Socet_scan.Hscan.depth;
          string_of_int (List.length (Version.generate rcg));
        ])
      (builtin_cores ())
  in
  Socet_util.Ascii_table.print
    ~header:[ "core"; "area"; "FFs"; "in bits"; "out bits"; "hscan depth"; "versions" ]
    rows;
  0

(* ------------------------------------------------------------------ *)
(* socet core <name>                                                   *)
(* ------------------------------------------------------------------ *)

let cmd_core opts name =
  with_obs opts @@ fun () ->
  let core = core_of_name name in
  Format.printf "%a@." Rtl_core.pp core;
  let rcg = Rcg.of_core core in
  let hscan = Socet_scan.Hscan.insert rcg in
  Printf.printf "HSCAN: depth %d, %d cells, chains:\n"
    hscan.Socet_scan.Hscan.depth hscan.Socet_scan.Hscan.overhead_cells;
  List.iter
    (fun chain ->
      print_string "  ";
      print_endline
        (String.concat " -> "
           (List.map (fun v -> (Rcg.node rcg v).Rcg.n_name) chain)))
    hscan.Socet_scan.Hscan.chains;
  let versions = Version.generate rcg in
  List.iter
    (fun v ->
      Printf.printf "Version %d (%d cells):\n" v.Version.v_index
        v.Version.v_overhead;
      List.iter
        (fun p ->
          Printf.printf "  %s -> %s : %d cycle(s)\n"
            (Rcg.node rcg p.Version.pr_input).Rcg.n_name
            (Rcg.node rcg p.Version.pr_output).Rcg.n_name p.Version.pr_latency)
        v.Version.v_pairs)
    versions;
  0

(* ------------------------------------------------------------------ *)
(* socet space <system>                                                *)
(* ------------------------------------------------------------------ *)

let cmd_space opts system =
  with_obs opts @@ fun () ->
  let soc = system_of_name system in
  let points = Select.design_space soc in
  Socet_util.Ascii_table.print
    ~header:[ "pt"; "versions"; "area ovhd (cells)"; "TAT (cycles)" ]
    (List.mapi
       (fun i p ->
         [
           string_of_int (i + 1);
           String.concat " "
             (List.map
                (fun (n, k) -> Printf.sprintf "%s=%d" n k)
                p.Select.pt_choice);
           string_of_int p.Select.pt_area;
           string_of_int p.Select.pt_time;
         ])
       points);
  0

(* ------------------------------------------------------------------ *)
(* socet explore <system>                                              *)
(* ------------------------------------------------------------------ *)

let cmd_explore opts cache system objective max_area max_time search_budget
    no_memo =
  run_request opts
    (Proto.make ?cache
       (Proto.Explore
          {
            Proto.ex_system = system;
            ex_objective =
              (match objective with `Time -> Proto.Min_time | `Area -> Proto.Min_area);
            ex_max_area = max_area;
            ex_max_time = max_time;
            ex_search_budget = search_budget;
            ex_no_memo = no_memo;
          }))

(* ------------------------------------------------------------------ *)
(* socet coverage <system>                                             *)
(* ------------------------------------------------------------------ *)

let cmd_coverage opts system cycles =
  with_obs opts @@ fun () ->
  let soc = system_of_name system in
  let orig = Testgen.sequential_coverage soc ~cycles () in
  let hscan_only =
    Testgen.sequential_coverage soc ~with_core_scan:true ~cycles ()
  in
  let full = Testgen.scan_access_coverage soc in
  Socet_util.Ascii_table.print
    ~header:[ "access mechanism"; "FC %"; "TEff %" ]
    [
      [
        "none (functional stimuli)";
        Printf.sprintf "%.1f" orig.Testgen.fc;
        Printf.sprintf "%.1f" orig.Testgen.teff;
      ];
      [
        "core HSCAN only";
        Printf.sprintf "%.1f" hscan_only.Testgen.fc;
        Printf.sprintf "%.1f" hscan_only.Testgen.teff;
      ];
      [
        "full scan access (SOCET / FSCAN-BSCAN)";
        Printf.sprintf "%.1f" full.Testgen.fc;
        Printf.sprintf "%.1f" full.Testgen.teff;
      ];
    ];
  0

(* ------------------------------------------------------------------ *)
(* socet baseline <system>                                             *)
(* ------------------------------------------------------------------ *)

let cmd_baseline opts system =
  with_obs opts @@ fun () ->
  let soc = system_of_name system in
  let b = Baseline.evaluate soc in
  let all_v1 = List.map (fun ci -> (ci.Soc.ci_name, 1)) soc.Soc.insts in
  let s = Schedule.build soc ~choice:all_v1 () in
  Socet_util.Ascii_table.print
    ~header:[ "method"; "core DFT (cells)"; "chip DFT (cells)"; "TAT (cycles)" ]
    [
      [
        "FSCAN-BSCAN";
        string_of_int b.Baseline.b_core_scan_overhead;
        string_of_int b.Baseline.b_ring_overhead;
        string_of_int b.Baseline.b_time;
      ];
      [
        "SOCET (all version 1)";
        string_of_int (Soc.hscan_area_overhead soc);
        string_of_int s.Schedule.s_area_overhead;
        string_of_int s.Schedule.s_total_time;
      ];
    ];
  0

(* ------------------------------------------------------------------ *)
(* socet dot                                                           *)
(* ------------------------------------------------------------------ *)

let cmd_dot opts kind name =
  with_obs opts @@ fun () ->
  match kind with
  | `Core ->
      let core = core_of_name name in
      let rcg = Rcg.of_core core in
      let _ = Socet_scan.Hscan.insert rcg in
      print_string (Export.rcg_dot rcg);
      0
  | `System ->
      let soc = system_of_name name in
      let choice = List.map (fun ci -> (ci.Soc.ci_name, 1)) soc.Soc.insts in
      print_string (Export.ccg_dot (Ccg.build soc ~choice));
      0

(* ------------------------------------------------------------------ *)
(* socet schedule                                                      *)
(* ------------------------------------------------------------------ *)

let cmd_schedule opts cache system overlap backend =
  with_obs opts @@ fun () ->
  activate_cache cache;
  let soc = system_of_name system in
  match backend with
  | `Tam ->
      (* The wrapper/TAM schedule is inherently overlapped; --overlap is
         implied.  An invalid packing never prints: the backend replays
         every claim and surfaces a structured internal error instead. *)
      let p = or_die (Socet_tam.Backend.Tam_backend.plan soc) in
      (match p.Socet_tam.Backend.p_detail with
      | Socet_tam.Backend.D_tam sched -> print_string (Socet_tam.Schedule.render sched)
      | Socet_tam.Backend.D_ccg _ -> assert false);
      0
  | `Ccg ->
      let choice = List.map (fun ci -> (ci.Soc.ci_name, 1)) soc.Soc.insts in
      let s = Schedule.build soc ~choice () in
      Socet_util.Ascii_table.print
        ~header:[ "core"; "vectors"; "cycles/vec"; "tail"; "test time" ]
        (List.map
           (fun t ->
             [
               t.Schedule.ct_inst;
               string_of_int t.Schedule.ct_vectors;
               string_of_int t.Schedule.ct_period;
               string_of_int t.Schedule.ct_tail;
               string_of_int t.Schedule.ct_time;
             ])
           s.Schedule.s_tests);
      Printf.printf "sequential total: %d cycles\n" s.Schedule.s_total_time;
      if overlap then begin
        let makespan, starts = Schedule.parallel_makespan s in
        Printf.printf "overlapped makespan: %d cycles\n" makespan;
        List.iter (fun (c, st) -> Printf.printf "  %s starts at cycle %d\n" c st) starts
      end;
      0

(* ------------------------------------------------------------------ *)
(* socet chip <system>                                                 *)
(* ------------------------------------------------------------------ *)

let cmd_chip opts cache system deadline strict backend =
  run_request opts
    (Proto.make ?cache
       ?deadline_ms:(Option.map (fun s -> int_of_float (s *. 1000.0)) deadline)
       (Proto.Chip
          {
            Proto.ch_system = system;
            ch_strict = strict;
            ch_backend = (match backend with `Ccg -> Proto.Ccg | `Tam -> Proto.Tam);
          }))

(* ------------------------------------------------------------------ *)
(* socet tam [SYSTEM] / socet tam --fleet N                            *)
(* ------------------------------------------------------------------ *)

let cmd_tam opts cache system fleet seed cores width =
  with_obs opts @@ fun () ->
  activate_cache cache;
  match fleet with
  | Some count ->
      let entries = Socet_tam.Fleet.run ?width ?cores ~seed ~count () in
      print_string (Socet_tam.Fleet.render entries);
      let s = Socet_tam.Fleet.summarize entries in
      if s.Socet_tam.Fleet.s_failures > 0 || s.Socet_tam.Fleet.s_issues > 0 then begin
        Printf.eprintf "socet: fleet found %d failure(s) and %d replay issue(s)\n"
          s.Socet_tam.Fleet.s_failures s.Socet_tam.Fleet.s_issues;
        exit_internal
      end
      else 0
  | None ->
      let system =
        match system with
        | Some s -> s
        | None ->
            raise
              (Err.Socet_error
                 (Err.make ~engine:"cli" "tam needs a SYSTEM or --fleet N"))
      in
      let soc = system_of_name system in
      let sched = Socet_tam.Schedule.build ?width soc in
      print_string (Socet_tam.Schedule.render sched);
      (match Socet_tam.Replay.check soc sched with
      | [] -> 0
      | issues ->
          List.iter
            (fun i ->
              Printf.eprintf "socet: invalid TAM schedule: %s\n"
                (Socet_tam.Replay.pp_issue i))
            issues;
          exit_internal)

(* ------------------------------------------------------------------ *)
(* socet gen --seed N --cores K                                        *)
(* ------------------------------------------------------------------ *)

let cmd_gen opts seed cores homogeneous =
  with_obs opts @@ fun () ->
  let rng = Socet_util.Rng.create seed in
  let soc =
    Socet_cores.Gen.random_soc ?cores ~hetero:(not homogeneous) rng
  in
  Printf.printf "%s: %d logic core(s), %d memory block(s)\n" soc.Soc.soc_name
    (List.length soc.Soc.insts)
    (List.length soc.Soc.memories);
  Socet_util.Ascii_table.print
    ~header:[ "core"; "area"; "FFs"; "in bits"; "out bits"; "hscan depth"; "vectors" ]
    (List.map
       (fun ci ->
         [
           ci.Soc.ci_name;
           string_of_int (Socet_netlist.Netlist.area ci.Soc.ci_netlist);
           string_of_int (List.length (Socet_netlist.Netlist.dffs ci.Soc.ci_netlist));
           string_of_int (Rtl_core.input_bit_count ci.Soc.ci_core);
           string_of_int (Rtl_core.output_bit_count ci.Soc.ci_core);
           string_of_int ci.Soc.ci_hscan.Socet_scan.Hscan.depth;
           string_of_int (Soc.atpg_vectors ci);
         ])
       soc.Soc.insts);
  List.iter
    (fun m ->
      Printf.printf "memory %s: %d bits, BIST %d cells\n" m.Soc.m_name
        m.Soc.m_bits m.Soc.m_bist_area)
    soc.Soc.memories;
  0

(* ------------------------------------------------------------------ *)
(* socet atpg <core>                                                   *)
(* ------------------------------------------------------------------ *)

let cmd_atpg opts cache core =
  run_request opts (Proto.make ?cache (Proto.Atpg { Proto.at_core = core }))

(* ------------------------------------------------------------------ *)
(* socet diff-test                                                     *)
(* ------------------------------------------------------------------ *)

(* Both backends' reports for one SOC as a single string — the unit of
   byte-identity checking across diff-test passes. *)
let plan_both soc width =
  let buf = Buffer.create 1024 in
  let choice = List.map (fun ci -> (ci.Soc.ci_name, 1)) soc.Soc.insts in
  let s = Schedule.build soc ~choice () in
  Buffer.add_string buf
    (Socet_util.Ascii_table.render
       ~header:[ "core"; "vectors"; "cycles/vec"; "tail"; "test time" ]
       (List.map
          (fun t ->
            [
              t.Schedule.ct_inst;
              string_of_int t.Schedule.ct_vectors;
              string_of_int t.Schedule.ct_period;
              string_of_int t.Schedule.ct_tail;
              string_of_int t.Schedule.ct_time;
            ])
          s.Schedule.s_tests));
  Buffer.add_string buf
    (Printf.sprintf "sequential total: %d cycles\n" s.Schedule.s_total_time);
  Buffer.add_string buf (Socet_tam.Schedule.render (Socet_tam.Schedule.build ?width soc));
  Buffer.contents buf

(* A functional-but-equivalent netlist edit to the first core: an
   inverter pair spliced into its first primary output.  The logic
   function is unchanged, the structure is not — exactly the edit whose
   blast radius the incremental story bounds (its own ATPG and the
   chip-level schedules recompute; every other core's artifacts and all
   access routes are reused). *)
let edit_first_core soc =
  match soc.Soc.insts with
  | [] -> ()
  | ci :: _ -> (
      let nl = ci.Soc.ci_netlist in
      match Socet_netlist.Netlist.pos nl with
      | [] -> ()
      | (po, net) :: _ ->
          let a = Socet_netlist.Netlist.add_gate nl Socet_netlist.Cell.Inv [| net |] in
          let b = Socet_netlist.Netlist.add_gate nl Socet_netlist.Cell.Inv [| a |] in
          Socet_netlist.Netlist.replace_po nl po b)

let cmd_diff_test opts cache seed cores width =
  with_obs opts @@ fun () ->
  or_die (Cache.activate_dir cache);
  let gen () =
    Socet_cores.Gen.random_soc ?cores ~hetero:true (Socet_util.Rng.create seed)
  in
  (* Each pass regenerates the SOC from the seed with the scoreboard
     reset first, so per-core artifacts created during instantiation
     (version ladders) are tallied with the pass that triggered them. *)
  let run_pass label ~edit =
    Cache.reset_scoreboard ();
    let soc = gen () in
    if edit then edit_first_core soc;
    let out = plan_both soc width in
    (label, out, Cache.scoreboard ())
  in
  (* Sequential lets: a list literal's elements may evaluate in any
     order, and the passes share the store. *)
  let cold = run_pass "cold" ~edit:false in
  let warm = run_pass "warm" ~edit:false in
  let edited = run_pass "edited" ~edit:true in
  let warm_again = run_pass "warm-again" ~edit:false in
  let passes = [ cold; warm; edited; warm_again ] in
  Socet_util.Ascii_table.print
    ~header:[ "pass"; "namespace"; "reused"; "recomputed" ]
    (List.concat_map
       (fun (label, _, rows) ->
         List.map
           (fun (ns, hits, misses) ->
             [ label; ns; string_of_int hits; string_of_int misses ])
           rows)
       passes);
  let out_of l = match List.find (fun (p, _, _) -> p = l) passes with _, o, _ -> o in
  let totals l =
    match List.find (fun (p, _, _) -> p = l) passes with
    | _, _, rows ->
        List.fold_left (fun (h, m) (_, hits, misses) -> (h + hits, m + misses)) (0, 0) rows
  in
  let wh, wm = totals "warm" and eh, em = totals "edited" in
  Printf.printf "warm: reused %d, recomputed %d\n" wh wm;
  Printf.printf "edited core: reused %d, recomputed %d\n" eh em;
  let check what a b =
    if out_of a <> out_of b then
      raise
        (Err.Socet_error
           (Err.make ~kind:Err.Internal ~engine:"cache"
              (Printf.sprintf "%s: %s output differs from %s" what a b)))
  in
  (* The warm replay must be byte-identical to the cold one, and the
     edited pass must not have poisoned the unedited design's entries. *)
  check "cached replay" "warm" "cold";
  check "post-edit replay" "warm-again" "cold";
  print_endline "replay: warm and post-edit outputs byte-identical to cold";
  0

(* ------------------------------------------------------------------ *)
(* socet bist                                                          *)
(* ------------------------------------------------------------------ *)

let cmd_bist opts words width =
  with_obs opts @@ fun () ->
  let open Socet_bist in
  Socet_util.Ascii_table.print
    ~header:[ "algorithm"; "ops"; "coverage %" ]
    (List.map
       (fun (name, alg) ->
         let r = March.evaluate ~words ~width ~name alg in
         [ name; string_of_int r.March.ops; Printf.sprintf "%.1f" r.March.coverage ])
       [ ("March C-", March.march_c_minus); ("MATS+", March.mats_plus) ]);
  Printf.printf "BIST controller estimate: %d cells\n"
    (March.bist_area ~words ~width);
  0

(* ------------------------------------------------------------------ *)
(* socet version                                                       *)
(* ------------------------------------------------------------------ *)

let cmd_version opts () =
  with_obs opts @@ fun () ->
  print_string (Proto.version_lines ());
  0

(* ------------------------------------------------------------------ *)
(* socet serve / socet submit                                          *)
(* ------------------------------------------------------------------ *)

let cmd_serve opts cache socket queue_depth access_log workers max_retries
    stall_timeout_ms =
  with_obs opts @@ fun () ->
  (* Fail at startup, not on the first cached request: the directory is
     validated here and only its (known-good) path is handed to the
     server as the per-request default. *)
  Option.iter (fun dir -> ignore (or_die (Cache.open_dir dir))) cache;
  let srv =
    Socet_serve.Server.start ~queue_depth ?access_log ~workers ~max_retries
      ?stall_timeout_ms ?cache ~socket ()
  in
  Socet_serve.Server.install_signal_handlers srv;
  if workers > 0 then
    Printf.eprintf "socet: serving on %s (queue depth %d, %d worker(s))\n%!"
      socket queue_depth workers
  else
    Printf.eprintf "socet: serving on %s (queue depth %d)\n%!" socket queue_depth;
  let code = Socet_serve.Server.wait srv in
  Printf.eprintf "socet: drained, exiting\n%!";
  code

let cmd_submit opts cache socket deadline_ms retries retry_max_ms request =
  with_obs opts @@ fun () ->
  let req =
    match Proto.of_args ?deadline_ms ?cache request with
    | Ok req -> req
    | Error msg -> raise (Err.Socet_error (Err.make ~engine:"cli" msg))
  in
  let c = or_die (Socet_serve.Client.connect socket) in
  let reply = Fun.protect ~finally:(fun () -> Socet_serve.Client.close c)
      (fun () -> Socet_serve.Client.submit ~retries ~retry_max_ms c req)
  in
  let reply = or_die reply in
  print_string reply.Socet_serve.Client.r_stdout;
  prerr_string reply.Socet_serve.Client.r_stderr;
  reply.Socet_serve.Client.r_code

(* ------------------------------------------------------------------ *)
(* socet health                                                        *)
(* ------------------------------------------------------------------ *)

let cmd_health opts socket json =
  with_obs opts @@ fun () ->
  let c = or_die (Socet_serve.Client.connect socket) in
  let reply = Fun.protect ~finally:(fun () -> Socet_serve.Client.close c)
      (fun () -> Socet_serve.Client.request c (Proto.make Proto.Health))
  in
  let reply = or_die reply in
  if json then print_string reply.Socet_serve.Client.r_stdout
  else begin
    match Proto.decode_health reply.Socet_serve.Client.r_stdout with
    | Ok h -> print_string (Proto.render_health h)
    | Error msg ->
        raise
          (Err.Socet_error
             (Err.make ~engine:"cli" (Printf.sprintf "bad health report: %s" msg)))
  end;
  (* The server answers code 5 when the breaker is open, 0 otherwise, so
     the probe's exit status is itself the health signal. *)
  reply.Socet_serve.Client.r_code

(* ------------------------------------------------------------------ *)
(* Command wiring                                                      *)
(* ------------------------------------------------------------------ *)

let system_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"SYSTEM")

let cores_t = Term.(const cmd_cores $ obs_opts_t $ const ())

let core_t =
  Term.(
    const cmd_core $ obs_opts_t
    $ Arg.(required & pos 0 (some string) None & info [] ~docv:"CORE"))

let space_t = Term.(const cmd_space $ obs_opts_t $ system_arg)

let explore_t =
  let objective =
    Arg.(
      value
      & opt (enum [ ("time", `Time); ("area", `Area) ]) `Time
      & info [ "objective"; "o" ] ~doc:"Optimize test $(docv) (time or area).")
  in
  let max_area =
    Arg.(value & opt int 500 & info [ "max-area" ] ~doc:"Area budget in cells.")
  in
  let max_time =
    Arg.(value & opt int 5000 & info [ "max-time" ] ~doc:"TAT bound in cycles.")
  in
  let search_budget =
    Arg.(
      value
      & opt (some int) None
      & info [ "search-budget" ] ~docv:"NODES"
          ~doc:
            "Bound the optimizer search, in node-expansion units \
             (comparable to core.tsearch.nodes_expanded).  On exhaustion \
             the best point found so far is reported and the exit status \
             is 4.")
  in
  let no_memo =
    Arg.(
      value & flag
      & info [ "no-memo" ]
          ~doc:
            "Disable the route memo (one full schedule build per candidate \
             move).  Produces identical points; used to cross-check the \
             memoized search.")
  in
  Term.(
    const cmd_explore $ obs_opts_t $ cache_arg $ system_arg $ objective
    $ max_area $ max_time $ search_budget $ no_memo)

let coverage_t =
  let cycles =
    Arg.(value & opt int 512 & info [ "cycles" ] ~doc:"Functional stimulus length.")
  in
  Term.(const cmd_coverage $ obs_opts_t $ system_arg $ cycles)

let baseline_t = Term.(const cmd_baseline $ obs_opts_t $ system_arg)

let dot_t =
  let kind =
    Arg.(
      required
      & pos 0 (some (enum [ ("core", `Core); ("system", `System) ])) None
      & info [] ~docv:"KIND")
  in
  let target = Arg.(required & pos 1 (some string) None & info [] ~docv:"NAME") in
  Term.(const cmd_dot $ obs_opts_t $ kind $ target)

let bist_t =
  let words =
    Arg.(value & opt int 64 & info [ "words" ] ~doc:"Memory words to model.")
  in
  let width =
    Arg.(value & opt int 8 & info [ "width" ] ~doc:"Word width in bits.")
  in
  Term.(const cmd_bist $ obs_opts_t $ words $ width)

let backend_arg =
  Arg.(
    value
    & opt (enum [ ("ccg", `Ccg); ("tam", `Tam) ]) `Ccg
    & info [ "backend" ] ~docv:"BACKEND"
        ~doc:
          "Chip test flow: $(b,ccg) (the paper's transparency access over \
           the core connectivity graph) or $(b,tam) (IEEE 1500-style \
           wrappers on a shared test access mechanism).")

let schedule_t =
  let overlap =
    Arg.(value & flag & info [ "overlap" ] ~doc:"Also pack tests concurrently.")
  in
  Term.(
    const cmd_schedule $ obs_opts_t $ cache_arg $ system_arg $ overlap
    $ backend_arg)

let chip_t =
  let deadline =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"SECS"
          ~doc:
            "Wall-clock allowance for the whole planning run; on \
             exhaustion remaining work degrades (fallback schedules) or \
             the command exits with code 4.")
  in
  let strict =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:
            "Treat any degradation (a core falling back to FSCAN-BSCAN) \
             as a failure: exit with code 4 instead of 0.")
  in
  Term.(
    const cmd_chip $ obs_opts_t $ cache_arg $ system_arg $ deadline $ strict
    $ backend_arg)

let tam_t =
  let system =
    Arg.(value & pos 0 (some string) None & info [] ~docv:"SYSTEM")
  in
  let fleet =
    Arg.(
      value
      & opt (some int) None
      & info [ "fleet" ] ~docv:"N"
          ~doc:
            "Instead of one system, run both backends over $(docv) seeded \
             random SOCs and print the TAT-vs-area comparison; any backend \
             failure or replay violation makes the exit status nonzero.")
  in
  let seed =
    Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Fleet base seed.")
  in
  let cores =
    Arg.(
      value
      & opt (some int) None
      & info [ "cores" ] ~docv:"K" ~doc:"Logic cores per generated SOC.")
  in
  let width =
    Arg.(
      value
      & opt (some int) None
      & info [ "width" ] ~docv:"W"
          ~doc:"TAM width in wires (default 16).")
  in
  Term.(
    const cmd_tam $ obs_opts_t $ cache_arg $ system $ fleet $ seed $ cores
    $ width)

let gen_t =
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Generator seed.") in
  let cores =
    Arg.(
      value
      & opt (some int) None
      & info [ "cores" ] ~docv:"K"
          ~doc:"Logic core count (default: seed-dependent, 2-4).")
  in
  let homogeneous =
    Arg.(
      value & flag
      & info [ "homogeneous" ]
          ~doc:
            "Disable the heterogeneous core mix (profiles, memories) and \
             reproduce the historical uniform generator stream.")
  in
  Term.(const cmd_gen $ obs_opts_t $ seed $ cores $ homogeneous)

let atpg_t =
  Term.(
    const cmd_atpg $ obs_opts_t $ cache_arg
    $ Arg.(required & pos 0 (some string) None & info [] ~docv:"CORE"))

let diff_test_t =
  let cache =
    Arg.(
      required
      & opt (some string) None
      & info [ "cache" ] ~docv:"DIR"
          ~doc:
            "Result store to measure reuse against (created if \
             missing).  Run twice against the same $(docv) to see a \
             fully warm second pass.")
  in
  let seed = Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Generator seed.") in
  let cores =
    Arg.(
      value
      & opt (some int) None
      & info [ "cores" ] ~docv:"K" ~doc:"Logic cores in the generated SOC.")
  in
  let width =
    Arg.(
      value
      & opt (some int) None
      & info [ "width" ] ~docv:"W" ~doc:"TAM width in wires (default 16).")
  in
  Term.(const cmd_diff_test $ obs_opts_t $ cache $ seed $ cores $ width)

let version_t = Term.(const cmd_version $ obs_opts_t $ const ())

let socket_arg =
  Arg.(
    required
    & opt (some string) None
    & info [ "socket" ] ~docv:"PATH" ~doc:"Unix-domain socket path.")

let serve_t =
  let queue_depth =
    Arg.(
      value & opt int 64
      & info [ "queue-depth" ] ~docv:"N"
          ~doc:
            "Admission bound: at most $(docv) jobs may be queued; beyond \
             that submissions are rejected with a retriable overload \
             error (exit code 5 at the client).")
  in
  let access_log =
    Arg.(
      value
      & opt (some string) None
      & info [ "access-log" ] ~docv:"FILE"
          ~doc:
            "Append one JSON line per completed job (label, wait, run \
             time, exit code) to $(docv).")
  in
  let workers =
    Arg.(
      value & opt int 0
      & info [ "workers" ] ~docv:"N"
          ~doc:
            "Run jobs in $(docv) forked, crash-isolated worker processes \
             under a supervisor: a crashed or hung worker is respawned \
             and its job retried (byte-identical — jobs are deterministic \
             and idempotent); a crash-looping fleet trips a circuit \
             breaker and the server drains with exit code 5.  $(docv)=0 \
             (default) runs jobs in-process, one at a time.")
  in
  let max_retries =
    Arg.(
      value & opt int 2
      & info [ "max-retries" ] ~docv:"K"
          ~doc:
            "Re-run a job lost to a worker crash or hang at most $(docv) \
             times before failing it with a structured worker-lost error.")
  in
  let stall_timeout =
    Arg.(
      value
      & opt (some int) None
      & info [ "stall-timeout" ] ~docv:"MS"
          ~doc:
            "Watchdog for jobs without their own deadline: a worker \
             silent for $(docv) milliseconds is presumed hung, killed and \
             its job retried (default 30000).")
  in
  Term.(
    const cmd_serve $ obs_opts_t $ cache_arg $ socket_arg $ queue_depth
    $ access_log $ workers $ max_retries $ stall_timeout)

let submit_t =
  let deadline =
    Arg.(
      value
      & opt (some int) None
      & info [ "deadline" ] ~docv:"MS"
          ~doc:
            "Per-request deadline in milliseconds, enforced server-side: \
             expiring in the queue or mid-engine yields exit code 4.")
  in
  let retries =
    Arg.(
      value & opt int 0
      & info [ "retries" ] ~docv:"K"
          ~doc:
            "Resubmit an overload-rejected request up to $(docv) times, \
             backing off from the server's retry_after_ms hint with \
             exponential growth and jitter.")
  in
  let retry_max_ms =
    Arg.(
      value & opt int 2000
      & info [ "retry-max-ms" ] ~docv:"MS"
          ~doc:"Cap any single overload backoff wait at $(docv) milliseconds.")
  in
  let request =
    Arg.(
      value & pos_all string []
      & info [] ~docv:"REQUEST"
          ~doc:
            "The request, after $(b,--): ping | stats | health | explore \
             SYSTEM [--objective time|area] [--max-area N] [--max-time N] \
             [--search-budget N] [--no-memo] | chip SYSTEM [--strict] \
             [--backend ccg|tam] | atpg CORE.")
  in
  Term.(
    const cmd_submit $ obs_opts_t $ cache_arg $ socket_arg $ deadline
    $ retries $ retry_max_ms $ request)

let health_t =
  let json =
    Arg.(
      value & flag
      & info [ "json" ] ~doc:"Print the raw JSON report instead of the table.")
  in
  Term.(const cmd_health $ obs_opts_t $ socket_arg $ json)

let () =
  (* A fork+exec'd fleet worker re-enters this binary; the guard routes
     it straight into the serve loop and never returns. *)
  Socet_serve.Worker.exec_guard ();
  Socet_util.Chaos.from_env ();
  let info name doc = Cmd.info name ~doc ~exits in
  let cmds =
    [
      Cmd.v (info "cores" "List the built-in example cores.") cores_t;
      Cmd.v (info "core" "Show one core: RCG, HSCAN chains, version ladder.") core_t;
      Cmd.v (info "space" "Enumerate all version-choice design points.") space_t;
      Cmd.v (info "explore" "Run the iterative-improvement optimizer.") explore_t;
      Cmd.v (info "coverage" "Fault coverage with and without test access.") coverage_t;
      Cmd.v (info "baseline" "Compare against the FSCAN-BSCAN baseline.") baseline_t;
      Cmd.v (info "dot" "Emit Graphviz for a core's RCG or a system's CCG.") dot_t;
      Cmd.v (info "schedule" "Show the chip-level test schedule.") schedule_t;
      Cmd.v
        (info "chip"
           "Plan the chip test with graceful degradation (budget, \
            per-core FSCAN-BSCAN fallback).")
        chip_t;
      Cmd.v
        (info "tam"
           "Wrapper/TAM co-optimization: wrap each core (IEEE 1500 style), \
            pack the tests onto the TAM, or sweep a random-SOC fleet \
            against the ccg backend.")
        tam_t;
      Cmd.v
        (info "gen"
           "Generate and describe a seeded random SOC (the fleet \
            workload's generator).")
        gen_t;
      Cmd.v (info "atpg" "Run combinational ATPG (PODEM) on one core.") atpg_t;
      Cmd.v
        (info "diff-test"
           "Incremental re-test report: plan a seeded SOC cold, warm, \
            and after editing one core, tallying reused vs recomputed \
            work per cache namespace and checking cached replays are \
            byte-identical.")
        diff_test_t;
      Cmd.v (info "bist" "Evaluate March memory-BIST algorithms.") bist_t;
      Cmd.v
        (info "serve"
           "Run the job server on a Unix-domain socket: framed requests, \
            bounded FIFO queue over the domain pool, graceful drain on \
            SIGTERM/SIGINT.")
        serve_t;
      Cmd.v
        (info "submit"
           "Send one request to a running server and relay its output \
            (byte-identical to the direct subcommand) and exit code.")
        submit_t;
      Cmd.v
        (info "health"
           "Probe a running server: uptime, queue depth, per-worker \
            state.  Exits 0 when healthy, 5 when the worker-fleet \
            circuit breaker is open.")
        health_t;
      Cmd.v
        (info "version" "Print version, protocol, OCaml and feature info.")
        version_t;
    ]
  in
  let root =
    Cmd.group
      (Cmd.info "socet" ~version:Proto.package_version ~exits
         ~doc:"Transparency-based core test planning (DAC'98 SOCET reproduction).")
      cmds
  in
  exit (Cmd.eval' root)
