(* The socet command-line tool: inspect cores, explore SOC design points,
   and evaluate testability — the user-facing face of the library.

     dune exec bin/socet_cli.exe -- --help
*)

open Cmdliner
open Socet_rtl
open Socet_core
module Obs = Socet_obs.Obs
module Err = Socet_util.Error

(* Documented exit codes: engine failures surface as structured errors
   mapped to distinct codes, never as raw exceptions through main. *)
let exit_invalid = 3
let exit_exhausted = 4

let exits =
  Cmd.Exit.info exit_invalid
    ~doc:
      "on invalid input: a malformed core or system, or a netlist that \
       fails load-time validation."
  :: Cmd.Exit.info exit_exhausted
       ~doc:
         "on search-budget or deadline exhaustion, or a degraded result \
          under $(b,--strict)."
  :: Cmd.Exit.defaults

(* ------------------------------------------------------------------ *)
(* Common plumbing: --stats / --trace / --jobs on every subcommand     *)
(* ------------------------------------------------------------------ *)

type obs_opts = { oo_stats : bool; oo_trace : string option; oo_jobs : int option }

let obs_opts_t =
  let stats =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:
            "Print the engines' observability report (counters, span \
             timers, histograms) after the command finishes.")
  in
  let trace =
    Arg.(
      value
      & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Record engine spans and write them as Chrome trace-event \
             JSON to $(docv) (load it in chrome://tracing or \
             https://ui.perfetto.dev).")
  in
  let jobs =
    Arg.(
      value
      & opt (some int) None
      & info [ "jobs"; "j" ] ~docv:"N" ~env:(Cmd.Env.info "SOCET_DOMAINS")
          ~doc:
            "Number of domains for the parallel engines (fault \
             simulation, design-space search).  $(docv)=1 runs \
             sequentially; the default is the machine's recommended \
             domain count.  Results are identical at any setting.")
  in
  Term.(
    const (fun oo_stats oo_trace oo_jobs -> { oo_stats; oo_trace; oo_jobs })
    $ stats $ trace $ jobs)

let with_obs opts run =
  Option.iter Socet_util.Pool.set_size opts.oo_jobs;
  if opts.oo_stats || opts.oo_trace <> None then
    Obs.configure ~trace:(opts.oo_trace <> None) ();
  let code =
    try run () with
    | Err.Socet_error e ->
        prerr_endline (Err.to_string e);
        Err.exit_code e
    | Socet_util.Budget.Exhausted_exn label ->
        Printf.eprintf "socet: budget %s exhausted\n" label;
        exit_exhausted
  in
  if opts.oo_stats then print_string (Obs.stats_table ());
  match opts.oo_trace with
  | None -> code
  | Some file -> (
      try
        Obs.write_trace file;
        Printf.eprintf "wrote %d spans to %s\n"
          (List.length (Obs.span_events ()))
          file;
        code
      with Sys_error e ->
        Printf.eprintf "socet: cannot write trace: %s\n" e;
        1)

let builtin_cores () =
  [
    ("cpu", Socet_cores.Cpu.core ());
    ("preprocessor", Socet_cores.Preprocessor.core ());
    ("display", Socet_cores.Display.core ());
    ("gcd", Socet_cores.Gcd_core.core ());
    ("graphics", Socet_cores.Graphics.core ());
    ("x25", Socet_cores.X25.core ());
  ]

(* Load-time validation: every elaborated core netlist goes through the
   structural validator before any engine touches it, so corruption is
   reported as a clean exit-code-3 failure naming the net, not a crash
   deep inside ATPG or scheduling. *)
let validated soc =
  List.iter
    (fun ci -> Socet_netlist.Validate.check_exn ci.Soc.ci_netlist)
    soc.Soc.insts;
  soc

let system_of_name = function
  | "system1" | "1" | "barcode" -> Ok (validated (Socet_cores.Systems.system1 ()))
  | "system2" | "2" -> Ok (validated (Socet_cores.Systems.system2 ()))
  | "system3" | "3" -> Ok (validated (Socet_cores.Systems.system3 ()))
  | s -> Error (Printf.sprintf "unknown system %S (use system1/system2/system3)" s)

(* ------------------------------------------------------------------ *)
(* socet cores                                                         *)
(* ------------------------------------------------------------------ *)

let cmd_cores opts () =
  with_obs opts @@ fun () ->
  let rows =
    List.map
      (fun (key, core) ->
        let nl = Socet_synth.Elaborate.core_to_netlist core in
        let rcg = Rcg.of_core core in
        let hscan = Socet_scan.Hscan.insert rcg in
        [
          key;
          string_of_int (Socet_netlist.Netlist.area nl);
          string_of_int (List.length (Socet_netlist.Netlist.dffs nl));
          string_of_int (Rtl_core.input_bit_count core);
          string_of_int (Rtl_core.output_bit_count core);
          string_of_int hscan.Socet_scan.Hscan.depth;
          string_of_int (List.length (Version.generate rcg));
        ])
      (builtin_cores ())
  in
  Socet_util.Ascii_table.print
    ~header:[ "core"; "area"; "FFs"; "in bits"; "out bits"; "hscan depth"; "versions" ]
    rows;
  0

(* ------------------------------------------------------------------ *)
(* socet core <name>                                                   *)
(* ------------------------------------------------------------------ *)

let cmd_core opts name =
  with_obs opts @@ fun () ->
  match List.assoc_opt name (builtin_cores ()) with
  | None ->
      Printf.eprintf "unknown core %S; try: %s\n" name
        (String.concat ", " (List.map fst (builtin_cores ())));
      1
  | Some core ->
      Format.printf "%a@." Rtl_core.pp core;
      let rcg = Rcg.of_core core in
      let hscan = Socet_scan.Hscan.insert rcg in
      Printf.printf "HSCAN: depth %d, %d cells, chains:\n"
        hscan.Socet_scan.Hscan.depth hscan.Socet_scan.Hscan.overhead_cells;
      List.iter
        (fun chain ->
          print_string "  ";
          print_endline
            (String.concat " -> "
               (List.map (fun v -> (Rcg.node rcg v).Rcg.n_name) chain)))
        hscan.Socet_scan.Hscan.chains;
      let versions = Version.generate rcg in
      List.iter
        (fun v ->
          Printf.printf "Version %d (%d cells):\n" v.Version.v_index
            v.Version.v_overhead;
          List.iter
            (fun p ->
              Printf.printf "  %s -> %s : %d cycle(s)\n"
                (Rcg.node rcg p.Version.pr_input).Rcg.n_name
                (Rcg.node rcg p.Version.pr_output).Rcg.n_name p.Version.pr_latency)
            v.Version.v_pairs)
        versions;
      0

(* ------------------------------------------------------------------ *)
(* socet space <system>                                                *)
(* ------------------------------------------------------------------ *)

let cmd_space opts system =
  with_obs opts @@ fun () ->
  match system_of_name system with
  | Error e ->
      prerr_endline e;
      1
  | Ok soc ->
      let points = Select.design_space soc in
      Socet_util.Ascii_table.print
        ~header:[ "pt"; "versions"; "area ovhd (cells)"; "TAT (cycles)" ]
        (List.mapi
           (fun i p ->
             [
               string_of_int (i + 1);
               String.concat " "
                 (List.map
                    (fun (n, k) -> Printf.sprintf "%s=%d" n k)
                    p.Select.pt_choice);
               string_of_int p.Select.pt_area;
               string_of_int p.Select.pt_time;
             ])
           points);
      0

(* ------------------------------------------------------------------ *)
(* socet explore <system>                                              *)
(* ------------------------------------------------------------------ *)

let cmd_explore opts system objective max_area max_time search_budget no_memo =
  with_obs opts @@ fun () ->
  match system_of_name system with
  | Error e ->
      prerr_endline e;
      1
  | Ok soc ->
      let budget =
        Option.map
          (fun steps -> Socet_util.Budget.create ~label:"select.opt" ~steps ())
          search_budget
      in
      let use_memo = not no_memo in
      let traj =
        match objective with
        | `Time -> Select.minimize_time ?budget ~use_memo soc ~max_area
        | `Area -> Select.minimize_area ?budget ~use_memo soc ~max_time
      in
      Socet_util.Ascii_table.print
        ~header:[ "step"; "versions"; "muxes"; "area"; "TAT" ]
        (List.mapi
           (fun i p ->
             [
               string_of_int i;
               String.concat " "
                 (List.map
                    (fun (n, k) -> Printf.sprintf "%s=%d" n k)
                    p.Select.pt_choice);
               string_of_int (List.length p.Select.pt_smuxes);
               string_of_int p.Select.pt_area;
               string_of_int p.Select.pt_time;
             ])
           traj);
      let best = Select.best_time_point traj in
      Printf.printf "best: area %d cells, TAT %d cycles\n" best.Select.pt_area
        best.Select.pt_time;
      match budget with
      | Some b when Socet_util.Budget.exhausted b ->
          Printf.eprintf
            "search budget exhausted; reporting best point found so far\n";
          exit_exhausted
      | _ -> 0

(* ------------------------------------------------------------------ *)
(* socet coverage <system>                                             *)
(* ------------------------------------------------------------------ *)

let cmd_coverage opts system cycles =
  with_obs opts @@ fun () ->
  match system_of_name system with
  | Error e ->
      prerr_endline e;
      1
  | Ok soc ->
      let orig = Testgen.sequential_coverage soc ~cycles () in
      let hscan_only =
        Testgen.sequential_coverage soc ~with_core_scan:true ~cycles ()
      in
      let full = Testgen.scan_access_coverage soc in
      Socet_util.Ascii_table.print
        ~header:[ "access mechanism"; "FC %"; "TEff %" ]
        [
          [
            "none (functional stimuli)";
            Printf.sprintf "%.1f" orig.Testgen.fc;
            Printf.sprintf "%.1f" orig.Testgen.teff;
          ];
          [
            "core HSCAN only";
            Printf.sprintf "%.1f" hscan_only.Testgen.fc;
            Printf.sprintf "%.1f" hscan_only.Testgen.teff;
          ];
          [
            "full scan access (SOCET / FSCAN-BSCAN)";
            Printf.sprintf "%.1f" full.Testgen.fc;
            Printf.sprintf "%.1f" full.Testgen.teff;
          ];
        ];
      0

(* ------------------------------------------------------------------ *)
(* socet baseline <system>                                             *)
(* ------------------------------------------------------------------ *)

let cmd_baseline opts system =
  with_obs opts @@ fun () ->
  match system_of_name system with
  | Error e ->
      prerr_endline e;
      1
  | Ok soc ->
      let b = Baseline.evaluate soc in
      let all_v1 = List.map (fun ci -> (ci.Soc.ci_name, 1)) soc.Soc.insts in
      let s = Schedule.build soc ~choice:all_v1 () in
      Socet_util.Ascii_table.print
        ~header:[ "method"; "core DFT (cells)"; "chip DFT (cells)"; "TAT (cycles)" ]
        [
          [
            "FSCAN-BSCAN";
            string_of_int b.Baseline.b_core_scan_overhead;
            string_of_int b.Baseline.b_ring_overhead;
            string_of_int b.Baseline.b_time;
          ];
          [
            "SOCET (all version 1)";
            string_of_int (Soc.hscan_area_overhead soc);
            string_of_int s.Schedule.s_area_overhead;
            string_of_int s.Schedule.s_total_time;
          ];
        ];
      0

(* ------------------------------------------------------------------ *)
(* socet dot                                                           *)
(* ------------------------------------------------------------------ *)

let cmd_dot opts kind name =
  with_obs opts @@ fun () ->
  match kind with
  | `Core -> (
      match List.assoc_opt name (builtin_cores ()) with
      | None ->
          Printf.eprintf "unknown core %S\n" name;
          1
      | Some core ->
          let rcg = Rcg.of_core core in
          let _ = Socet_scan.Hscan.insert rcg in
          print_string (Export.rcg_dot rcg);
          0)
  | `System -> (
      match system_of_name name with
      | Error e ->
          prerr_endline e;
          1
      | Ok soc ->
          let choice = List.map (fun ci -> (ci.Soc.ci_name, 1)) soc.Soc.insts in
          print_string (Export.ccg_dot (Ccg.build soc ~choice));
          0)

(* ------------------------------------------------------------------ *)
(* socet schedule                                                      *)
(* ------------------------------------------------------------------ *)

let cmd_schedule opts system overlap =
  with_obs opts @@ fun () ->
  match system_of_name system with
  | Error e ->
      prerr_endline e;
      1
  | Ok soc ->
      let choice = List.map (fun ci -> (ci.Soc.ci_name, 1)) soc.Soc.insts in
      let s = Schedule.build soc ~choice () in
      Socet_util.Ascii_table.print
        ~header:[ "core"; "vectors"; "cycles/vec"; "tail"; "test time" ]
        (List.map
           (fun t ->
             [
               t.Schedule.ct_inst;
               string_of_int t.Schedule.ct_vectors;
               string_of_int t.Schedule.ct_period;
               string_of_int t.Schedule.ct_tail;
               string_of_int t.Schedule.ct_time;
             ])
           s.Schedule.s_tests);
      Printf.printf "sequential total: %d cycles\n" s.Schedule.s_total_time;
      if overlap then begin
        let makespan, starts = Schedule.parallel_makespan s in
        Printf.printf "overlapped makespan: %d cycles\n" makespan;
        List.iter (fun (c, st) -> Printf.printf "  %s starts at cycle %d\n" c st) starts
      end;
      0

(* ------------------------------------------------------------------ *)
(* socet chip <system>                                                 *)
(* ------------------------------------------------------------------ *)

let cmd_chip opts system deadline strict =
  with_obs opts @@ fun () ->
  match system_of_name system with
  | Error e ->
      prerr_endline e;
      exit_invalid
  | Ok soc -> (
      let budget =
        Option.map
          (fun s -> Socet_util.Budget.create ~label:"chip" ~deadline_s:s ())
          deadline
      in
      let choice = List.map (fun ci -> (ci.Soc.ci_name, 1)) soc.Soc.insts in
      match Resilient.plan ?budget soc ~choice () with
      | Error e ->
          prerr_endline (Err.to_string e);
          Err.exit_code e
      | Ok p ->
          Socet_util.Ascii_table.print
            ~header:[ "core"; "mechanism"; "test time"; "extra area" ]
            (List.map
               (fun (c : Resilient.core_plan) ->
                 [
                   c.Resilient.p_inst;
                   (match c.Resilient.p_rung with
                   | Resilient.Transparency -> "transparency"
                   | Resilient.Fallback_fscan_bscan -> "FSCAN-BSCAN fallback");
                   string_of_int c.Resilient.p_time;
                   string_of_int c.Resilient.p_area;
                 ])
               p.Resilient.p_cores);
          Printf.printf "total time: %d cycles, area overhead: %d cells\n"
            p.Resilient.p_total_time p.Resilient.p_area_overhead;
          if p.Resilient.p_fallbacks > 0 then
            Printf.printf "degraded: %d core(s) fell back to FSCAN-BSCAN\n"
              p.Resilient.p_fallbacks;
          if strict && p.Resilient.p_fallbacks > 0 then begin
            Printf.eprintf
              "socet: --strict and %d core(s) degraded to the baseline\n"
              p.Resilient.p_fallbacks;
            exit_exhausted
          end
          else 0)

(* ------------------------------------------------------------------ *)
(* socet bist                                                          *)
(* ------------------------------------------------------------------ *)

let cmd_bist opts words width =
  with_obs opts @@ fun () ->
  let open Socet_bist in
  Socet_util.Ascii_table.print
    ~header:[ "algorithm"; "ops"; "coverage %" ]
    (List.map
       (fun (name, alg) ->
         let r = March.evaluate ~words ~width ~name alg in
         [ name; string_of_int r.March.ops; Printf.sprintf "%.1f" r.March.coverage ])
       [ ("March C-", March.march_c_minus); ("MATS+", March.mats_plus) ]);
  Printf.printf "BIST controller estimate: %d cells\n"
    (March.bist_area ~words ~width);
  0

(* ------------------------------------------------------------------ *)
(* Command wiring                                                      *)
(* ------------------------------------------------------------------ *)

let system_arg = Arg.(required & pos 0 (some string) None & info [] ~docv:"SYSTEM")

let cores_t = Term.(const cmd_cores $ obs_opts_t $ const ())

let core_t =
  Term.(
    const cmd_core $ obs_opts_t
    $ Arg.(required & pos 0 (some string) None & info [] ~docv:"CORE"))

let space_t = Term.(const cmd_space $ obs_opts_t $ system_arg)

let explore_t =
  let objective =
    Arg.(
      value
      & opt (enum [ ("time", `Time); ("area", `Area) ]) `Time
      & info [ "objective"; "o" ] ~doc:"Optimize test $(docv) (time or area).")
  in
  let max_area =
    Arg.(value & opt int 500 & info [ "max-area" ] ~doc:"Area budget in cells.")
  in
  let max_time =
    Arg.(value & opt int 5000 & info [ "max-time" ] ~doc:"TAT bound in cycles.")
  in
  let search_budget =
    Arg.(
      value
      & opt (some int) None
      & info [ "search-budget" ] ~docv:"NODES"
          ~doc:
            "Bound the optimizer search, in node-expansion units \
             (comparable to core.tsearch.nodes_expanded).  On exhaustion \
             the best point found so far is reported and the exit status \
             is 4.")
  in
  let no_memo =
    Arg.(
      value & flag
      & info [ "no-memo" ]
          ~doc:
            "Disable the route memo (one full schedule build per candidate \
             move).  Produces identical points; used to cross-check the \
             memoized search.")
  in
  Term.(
    const cmd_explore $ obs_opts_t $ system_arg $ objective $ max_area
    $ max_time $ search_budget $ no_memo)

let coverage_t =
  let cycles =
    Arg.(value & opt int 512 & info [ "cycles" ] ~doc:"Functional stimulus length.")
  in
  Term.(const cmd_coverage $ obs_opts_t $ system_arg $ cycles)

let baseline_t = Term.(const cmd_baseline $ obs_opts_t $ system_arg)

let dot_t =
  let kind =
    Arg.(
      required
      & pos 0 (some (enum [ ("core", `Core); ("system", `System) ])) None
      & info [] ~docv:"KIND")
  in
  let target = Arg.(required & pos 1 (some string) None & info [] ~docv:"NAME") in
  Term.(const cmd_dot $ obs_opts_t $ kind $ target)

let bist_t =
  let words =
    Arg.(value & opt int 64 & info [ "words" ] ~doc:"Memory words to model.")
  in
  let width =
    Arg.(value & opt int 8 & info [ "width" ] ~doc:"Word width in bits.")
  in
  Term.(const cmd_bist $ obs_opts_t $ words $ width)

let schedule_t =
  let overlap =
    Arg.(value & flag & info [ "overlap" ] ~doc:"Also pack tests concurrently.")
  in
  Term.(const cmd_schedule $ obs_opts_t $ system_arg $ overlap)

let chip_t =
  let deadline =
    Arg.(
      value
      & opt (some float) None
      & info [ "deadline" ] ~docv:"SECS"
          ~doc:
            "Wall-clock allowance for the whole planning run; on \
             exhaustion remaining work degrades (fallback schedules) or \
             the command exits with code 4.")
  in
  let strict =
    Arg.(
      value & flag
      & info [ "strict" ]
          ~doc:
            "Treat any degradation (a core falling back to FSCAN-BSCAN) \
             as a failure: exit with code 4 instead of 0.")
  in
  Term.(const cmd_chip $ obs_opts_t $ system_arg $ deadline $ strict)

let () =
  Socet_util.Chaos.from_env ();
  let info name doc = Cmd.info name ~doc ~exits in
  let cmds =
    [
      Cmd.v (info "cores" "List the built-in example cores.") cores_t;
      Cmd.v (info "core" "Show one core: RCG, HSCAN chains, version ladder.") core_t;
      Cmd.v (info "space" "Enumerate all version-choice design points.") space_t;
      Cmd.v (info "explore" "Run the iterative-improvement optimizer.") explore_t;
      Cmd.v (info "coverage" "Fault coverage with and without test access.") coverage_t;
      Cmd.v (info "baseline" "Compare against the FSCAN-BSCAN baseline.") baseline_t;
      Cmd.v (info "dot" "Emit Graphviz for a core's RCG or a system's CCG.") dot_t;
      Cmd.v (info "schedule" "Show the chip-level test schedule.") schedule_t;
      Cmd.v
        (info "chip"
           "Plan the chip test with graceful degradation (budget, \
            per-core FSCAN-BSCAN fallback).")
        chip_t;
      Cmd.v (info "bist" "Evaluate March memory-BIST algorithms.") bist_t;
    ]
  in
  let root =
    Cmd.group
      (Cmd.info "socet" ~version:"1.0.0"
         ~doc:"Transparency-based core test planning (DAC'98 SOCET reproduction).")
      cmds
  in
  exit (Cmd.eval' root)
